//! Serving-path benchmark: requests/sec through the batch data path,
//! before and after the PR-3 optimizations.
//!
//! Two variants push the same request stream (256×256 timing-only
//! requests, fixed 6 iterations) through the serving stack:
//!
//! * **baseline** — an emulation of the pre-optimization data path,
//!   frozen here as the measurement reference: requests queue as
//!   `Matrix<f64>`, `execute_batch` *clones* every matrix out of its
//!   entry (casting f64→f32 inside the accelerator), each batch spawns
//!   a fresh scoped thread per matrix, and every request
//!   re-simulates the full orthogonalization timeline
//!   (`timing_replay = false`).
//! * **optimized** — the real [`heterosvd_serve::SvdService`]: f32 cast
//!   once at admission, matrices *moved* into the accelerator, batches
//!   run on the persistent [`heterosvd::BatchPool`], and per-plan
//!   timing replay on (the default).
//!
//! Reported per variant: completed requests, wall seconds,
//! requests/sec, and p50/p99 request wall latency in microseconds. The
//! report's `speedup` is `optimized.requests_per_sec /
//! baseline.requests_per_sec`.

use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig, HeteroSvdError};
use heterosvd_serve::{Percentiles, ServeConfig, SvdService};
use std::time::{Duration, Instant};
use svd_kernels::Matrix;

/// One measured variant of the serving path.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServeRow {
    /// `baseline` or `optimized`.
    pub variant: String,
    /// Requests pushed through the variant.
    pub requests: usize,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Wall-clock seconds from first submission to last completion.
    pub wall_secs: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Median request wall latency (admission → completion), µs.
    pub p50_wall_us: u64,
    /// 99th-percentile request wall latency, µs.
    pub p99_wall_us: u64,
    /// The service's windowed throughput over exactly the measured
    /// serving interval (completions per second between the snapshot
    /// taken at submission start and the one taken after the last
    /// completion). `None` for the baseline, which has no service to
    /// snapshot. Unlike `requests_per_sec`, this excludes the service's
    /// own startup from the denominator.
    pub requests_per_sec_window: Option<f64>,
    /// Windowed decompose-class rate over the same interval (the
    /// service tracks per-type windows; surfacing them here keeps
    /// packed-vs-sequential runs comparable per request class).
    /// `None` for the baseline.
    pub decompose_rps_window: Option<f64>,
    /// Windowed apply-class rate over the same interval. Zero for this
    /// decompose-only workload, emitted for schema stability.
    pub apply_rps_window: Option<f64>,
    /// Batches the service executed as packed multi-tenant waves.
    /// `None` for the baseline.
    pub packed_batches: Option<u64>,
    /// Requests served inside packed waves. `None` for the baseline.
    pub packed_requests: Option<u64>,
}

/// The complete serving report (serialized to `BENCH_serve.json`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServeReport {
    /// Matrix dimension of the workload (n×n).
    pub n: usize,
    /// Engine parallelism `P_eng` of every accelerator.
    pub p_eng: usize,
    /// Task parallelism `P_task` (Eq. 14 divisor).
    pub p_task: usize,
    /// Largest batch either variant forms.
    pub max_batch: usize,
    /// Fixed iteration count per request.
    pub iterations: usize,
    /// One row per variant.
    pub results: Vec<ServeRow>,
    /// `optimized.requests_per_sec / baseline.requests_per_sec`.
    pub speedup: f64,
}

fn request_matrix(n: usize, seed: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |r, c| {
        ((r * 31 + c * 17 + seed * 7 + 3) % 13) as f64 / 3.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
    })
}

fn row(
    variant: &str,
    requests: usize,
    completed: usize,
    wall: Duration,
    wall_us: &mut [u64],
) -> ServeRow {
    let secs = wall.as_secs_f64();
    let pct = Percentiles::from_samples(wall_us);
    ServeRow {
        variant: variant.to_string(),
        requests,
        completed,
        wall_secs: secs,
        requests_per_sec: if secs > 0.0 {
            completed as f64 / secs
        } else {
            0.0
        },
        p50_wall_us: pct.p50,
        p99_wall_us: pct.p99,
        requests_per_sec_window: None,
        decompose_rps_window: None,
        apply_rps_window: None,
        packed_batches: None,
        packed_requests: None,
    }
}

/// The pre-optimization serving data path, frozen as the baseline: f64
/// queue entries, a clone per request per batch, a fresh thread per
/// matrix per batch, and full timeline re-simulation on every request.
/// Do not optimize — its cost profile IS the measurement.
fn run_baseline(
    n: usize,
    p_eng: usize,
    p_task: usize,
    max_batch: usize,
    iterations: usize,
    requests: usize,
) -> Result<ServeRow, HeteroSvdError> {
    let cfg = HeteroSvdConfig::builder(n, n)
        .engine_parallelism(p_eng)
        .task_parallelism(p_task)
        .fidelity(FidelityMode::TimingOnly)
        .fixed_iterations(iterations)
        .timing_replay(false)
        .build()?;
    let accelerator = Accelerator::new(cfg)?;

    // The old queue stored the caller's f64 matrices verbatim.
    let queued: Vec<Matrix<f64>> = (0..requests).map(|i| request_matrix(n, i)).collect();
    let mut wall_us: Vec<u64> = Vec::with_capacity(requests);
    let mut completed = 0usize;
    let start = Instant::now();
    for batch in queued.chunks(max_batch) {
        let batch_start = Instant::now();
        // Clone-per-entry, exactly as the old execute_batch did.
        let matrices: Vec<Matrix<f64>> = batch.to_vec();
        // Thread-per-matrix scope, exactly as the old run_many did
        // (std scoped threads; the old code used the since-removed
        // crossbeam shim for the same spawn-per-matrix shape).
        let outputs: Vec<Result<_, HeteroSvdError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = matrices
                .iter()
                .map(|m| {
                    let acc = &accelerator;
                    scope.spawn(move || acc.run(m))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let batch_wall = batch_start.elapsed();
        for output in outputs {
            output?;
            completed += 1;
            // Every request in the batch waited for the whole batch.
            wall_us.push(batch_wall.as_micros() as u64);
        }
    }
    Ok(row(
        "baseline",
        requests,
        completed,
        start.elapsed(),
        &mut wall_us,
    ))
}

/// The current serving stack end to end.
fn run_optimized(
    n: usize,
    p_eng: usize,
    p_task: usize,
    max_batch: usize,
    iterations: usize,
    requests: usize,
) -> Result<ServeRow, heterosvd_serve::ServeError> {
    let service = SvdService::start(ServeConfig {
        workers: 2,
        queue_capacity: requests.max(1),
        max_batch,
        max_linger: Duration::from_micros(200),
        engine_parallelism: p_eng,
        task_parallelism: p_task,
        fidelity: FidelityMode::TimingOnly,
        fixed_iterations: Some(iterations),
        ..ServeConfig::default()
    })?;
    let mut wall_us: Vec<u64> = Vec::with_capacity(requests);
    let mut completed = 0usize;
    // Snapshot once to pin the throughput window to the start of the
    // measured interval; the post-run snapshot then reports completions
    // per second over exactly the serving span, startup excluded.
    let _ = service.metrics();
    let start = Instant::now();
    let handles: Vec<_> = (0..requests)
        .map(|i| service.try_submit(request_matrix(n, i)))
        .collect::<Result<_, _>>()?;
    for handle in handles {
        let response = handle.wait()?;
        completed += 1;
        wall_us.push(response.latency.wall_total.as_micros() as u64);
    }
    let wall = start.elapsed();
    let snapshot = service.metrics();
    service.shutdown();
    let mut measured = row("optimized", requests, completed, wall, &mut wall_us);
    measured.requests_per_sec_window = Some(snapshot.throughput_rps_window);
    measured.decompose_rps_window = Some(snapshot.per_type.decompose.throughput_rps_window);
    measured.apply_rps_window = Some(snapshot.per_type.apply.throughput_rps_window);
    measured.packed_batches = Some(snapshot.packed_batches);
    measured.packed_requests = Some(snapshot.packed_requests);
    Ok(measured)
}

/// Measures both variants on an `n×n` timing-only workload and returns
/// the report.
///
/// # Errors
///
/// Accelerator or service errors from either variant.
pub fn run(
    n: usize,
    p_eng: usize,
    p_task: usize,
    max_batch: usize,
    iterations: usize,
    requests: usize,
) -> Result<ServeReport, HeteroSvdError> {
    assert!(requests > 0, "need at least one request");
    let baseline = run_baseline(n, p_eng, p_task, max_batch, iterations, requests)?;
    let optimized = run_optimized(n, p_eng, p_task, max_batch, iterations, requests)
        .map_err(|e| HeteroSvdError::InvalidConfig(format!("serving variant failed: {e}")))?;
    let speedup = if baseline.requests_per_sec > 0.0 {
        optimized.requests_per_sec / baseline.requests_per_sec
    } else {
        f64::NAN
    };
    Ok(ServeReport {
        n,
        p_eng,
        p_task,
        max_batch,
        iterations,
        results: vec![baseline, optimized],
        speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both variants complete every request on a small workload and the
    /// report is internally consistent.
    #[test]
    fn small_workload_report_is_consistent() {
        let report = run(32, 2, 2, 4, 3, 8).unwrap();
        assert_eq!(report.results.len(), 2);
        for r in &report.results {
            assert_eq!(r.completed, 8, "{} dropped requests", r.variant);
            assert!(r.requests_per_sec > 0.0, "{}: zero throughput", r.variant);
            assert!(r.p99_wall_us >= r.p50_wall_us);
            match r.variant.as_str() {
                "optimized" => {
                    let w = r.requests_per_sec_window.expect("windowed rate present");
                    assert!(w > 0.0, "windowed rate should cover the serving span");
                    let d = r.decompose_rps_window.expect("per-type rate present");
                    assert!(d > 0.0, "decompose-class rate should be nonzero");
                    assert_eq!(r.apply_rps_window, Some(0.0), "no apply traffic here");
                    assert!(r.packed_batches.is_some() && r.packed_requests.is_some());
                }
                _ => {
                    assert!(r.requests_per_sec_window.is_none());
                    assert!(r.decompose_rps_window.is_none());
                    assert!(r.packed_batches.is_none());
                }
            }
        }
        assert!(report.speedup.is_finite());
    }
}
