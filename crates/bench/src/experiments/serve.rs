//! Serving-path benchmark: requests/sec through the batch data path,
//! before and after the PR-3 optimizations.
//!
//! Two variants push the same request stream (256×256 timing-only
//! requests, fixed 6 iterations) through the serving stack:
//!
//! * **baseline** — an emulation of the pre-optimization data path,
//!   frozen here as the measurement reference: requests queue as
//!   `Matrix<f64>`, `execute_batch` *clones* every matrix out of its
//!   entry (casting f64→f32 inside the accelerator), each batch spawns
//!   a fresh scoped thread per matrix, and every request
//!   re-simulates the full orthogonalization timeline
//!   (`timing_replay = false`).
//! * **optimized** — the real [`heterosvd_serve::SvdService`]: f32 cast
//!   once at admission, matrices *moved* into the accelerator, batches
//!   run on the persistent [`heterosvd::BatchPool`], and per-plan
//!   timing replay on (the default).
//!
//! Reported per variant: completed requests, wall seconds,
//! requests/sec, and p50/p99 request wall latency in microseconds. The
//! report's `speedup` is `optimized.requests_per_sec /
//! baseline.requests_per_sec`.

use crate::workload::{self, TraceEvent};
use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig, HeteroSvdError};
use heterosvd_serve::{Percentiles, ServeConfig, SloClass, SubmitOptions, SvdService};
use std::time::{Duration, Instant};
use svd_kernels::Matrix;

/// One measured variant of the serving path.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServeRow {
    /// `baseline` or `optimized`.
    pub variant: String,
    /// Requests pushed through the variant.
    pub requests: usize,
    /// Requests that completed successfully.
    pub completed: usize,
    /// Wall-clock seconds from first submission to last completion.
    pub wall_secs: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Median request wall latency (admission → completion), µs.
    pub p50_wall_us: u64,
    /// 99th-percentile request wall latency, µs.
    pub p99_wall_us: u64,
    /// The service's windowed throughput over exactly the measured
    /// serving interval (completions per second between the snapshot
    /// taken at submission start and the one taken after the last
    /// completion). `None` for the baseline, which has no service to
    /// snapshot. Unlike `requests_per_sec`, this excludes the service's
    /// own startup from the denominator.
    pub requests_per_sec_window: Option<f64>,
    /// Windowed decompose-class rate over the same interval (the
    /// service tracks per-type windows; surfacing them here keeps
    /// packed-vs-sequential runs comparable per request class).
    /// `None` for the baseline.
    pub decompose_rps_window: Option<f64>,
    /// Windowed apply-class rate over the same interval. Zero for this
    /// decompose-only workload, emitted for schema stability.
    pub apply_rps_window: Option<f64>,
    /// Batches the service executed as packed multi-tenant waves.
    /// `None` for the baseline.
    pub packed_batches: Option<u64>,
    /// Requests served inside packed waves. `None` for the baseline.
    pub packed_requests: Option<u64>,
}

/// The complete serving report (serialized to `BENCH_serve.json`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServeReport {
    /// Matrix dimension of the workload (n×n).
    pub n: usize,
    /// Engine parallelism `P_eng` of every accelerator.
    pub p_eng: usize,
    /// Task parallelism `P_task` (Eq. 14 divisor).
    pub p_task: usize,
    /// Largest batch either variant forms.
    pub max_batch: usize,
    /// Fixed iteration count per request.
    pub iterations: usize,
    /// One row per variant.
    pub results: Vec<ServeRow>,
    /// `optimized.requests_per_sec / baseline.requests_per_sec`.
    pub speedup: f64,
    /// The shape-classed scheduler A/B on the 95:5 multi-shape bursty
    /// trace. `None` when the multishape experiment was not run.
    pub multishape: Option<MultiShapeReport>,
}

/// One scheduler variant (`fifo` or `classed`) of the multi-shape run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MultiShapeRow {
    /// `fifo` (shape-blind) or `classed` (EDF shape-classed).
    pub scheduler: String,
    /// Dominant-shape requests completed.
    pub dominant_completed: usize,
    /// Rare-shape requests completed.
    pub rare_completed: usize,
    /// p99 end-to-end wall latency of the dominant shape, µs.
    pub dominant_p99_wall_us: u64,
    /// p99 end-to-end wall latency of the rare shape, µs.
    pub rare_p99_wall_us: u64,
    /// Dominant-shape completions per wall second over the replay.
    pub dominant_rps: f64,
    /// Interactive-class p99 wall latency from the service's own
    /// per-class metrics (classes are stamped and recorded in both
    /// modes; only the *scheduler* is class-blind under FIFO).
    pub interactive_p99_wall_us: u64,
    /// Batch-class p99 wall latency from the per-class metrics.
    pub batch_p99_wall_us: u64,
    /// Requests shed or evicted by the overload policy.
    pub shed: u64,
    /// Batches replicas stole across dispatch sub-pools.
    pub batches_stolen: u64,
}

/// A/B report of the shape-classed scheduler on the seeded 95:5
/// two-shape bursty trace (dominant Batch-class small matrices, rare
/// Interactive-class larger ones), replayed identically through both
/// schedulers.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MultiShapeReport {
    /// Trace seed (both variants replay the identical stream).
    pub seed: u64,
    /// Quick mode (shorter trace, relaxed gates).
    pub quick: bool,
    /// Dominant request shape as `rows x cols`.
    pub dominant_shape: String,
    /// Rare request shape as `rows x cols`.
    pub rare_shape: String,
    /// Events in the trace.
    pub events: usize,
    /// One row per scheduler variant.
    pub rows: Vec<MultiShapeRow>,
    /// `fifo.rare_p99_wall_us / classed.rare_p99_wall_us` — how much
    /// the classed scheduler improves the rare class's tail.
    pub rare_p99_improvement: f64,
    /// `classed.dominant_rps / fifo.dominant_rps` — the throughput the
    /// dominant shape gives up for that tail.
    pub dominant_throughput_ratio: f64,
    /// Every sampled factorization matched a solo accelerator run
    /// bitwise, under both schedulers.
    pub factors_bit_identical: bool,
    /// Acceptance-gate violations (empty = all gates pass): rare-class
    /// tail improvement, dominant-throughput retention, bit-identity.
    pub gate_violations: Vec<String>,
}

fn request_matrix(n: usize, seed: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |r, c| {
        ((r * 31 + c * 17 + seed * 7 + 3) % 13) as f64 / 3.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
    })
}

fn row(
    variant: &str,
    requests: usize,
    completed: usize,
    wall: Duration,
    wall_us: &mut [u64],
) -> ServeRow {
    let secs = wall.as_secs_f64();
    let pct = Percentiles::from_samples(wall_us);
    ServeRow {
        variant: variant.to_string(),
        requests,
        completed,
        wall_secs: secs,
        requests_per_sec: if secs > 0.0 {
            completed as f64 / secs
        } else {
            0.0
        },
        p50_wall_us: pct.p50,
        p99_wall_us: pct.p99,
        requests_per_sec_window: None,
        decompose_rps_window: None,
        apply_rps_window: None,
        packed_batches: None,
        packed_requests: None,
    }
}

/// The pre-optimization serving data path, frozen as the baseline: f64
/// queue entries, a clone per request per batch, a fresh thread per
/// matrix per batch, and full timeline re-simulation on every request.
/// Do not optimize — its cost profile IS the measurement.
fn run_baseline(
    n: usize,
    p_eng: usize,
    p_task: usize,
    max_batch: usize,
    iterations: usize,
    requests: usize,
) -> Result<ServeRow, HeteroSvdError> {
    let cfg = HeteroSvdConfig::builder(n, n)
        .engine_parallelism(p_eng)
        .task_parallelism(p_task)
        .fidelity(FidelityMode::TimingOnly)
        .fixed_iterations(iterations)
        .timing_replay(false)
        .build()?;
    let accelerator = Accelerator::new(cfg)?;

    // The old queue stored the caller's f64 matrices verbatim.
    let queued: Vec<Matrix<f64>> = (0..requests).map(|i| request_matrix(n, i)).collect();
    let mut wall_us: Vec<u64> = Vec::with_capacity(requests);
    let mut completed = 0usize;
    let start = Instant::now();
    for batch in queued.chunks(max_batch) {
        let batch_start = Instant::now();
        // Clone-per-entry, exactly as the old execute_batch did.
        let matrices: Vec<Matrix<f64>> = batch.to_vec();
        // Thread-per-matrix scope, exactly as the old run_many did
        // (std scoped threads; the old code used the since-removed
        // crossbeam shim for the same spawn-per-matrix shape).
        let outputs: Vec<Result<_, HeteroSvdError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = matrices
                .iter()
                .map(|m| {
                    let acc = &accelerator;
                    scope.spawn(move || acc.run(m))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let batch_wall = batch_start.elapsed();
        for output in outputs {
            output?;
            completed += 1;
            // Every request in the batch waited for the whole batch.
            wall_us.push(batch_wall.as_micros() as u64);
        }
    }
    Ok(row(
        "baseline",
        requests,
        completed,
        start.elapsed(),
        &mut wall_us,
    ))
}

/// The current serving stack end to end.
fn run_optimized(
    n: usize,
    p_eng: usize,
    p_task: usize,
    max_batch: usize,
    iterations: usize,
    requests: usize,
) -> Result<ServeRow, heterosvd_serve::ServeError> {
    let service = SvdService::start(ServeConfig {
        workers: 2,
        queue_capacity: requests.max(1),
        max_batch,
        max_linger: Duration::from_micros(200),
        engine_parallelism: p_eng,
        task_parallelism: p_task,
        fidelity: FidelityMode::TimingOnly,
        fixed_iterations: Some(iterations),
        ..ServeConfig::default()
    })?;
    let mut wall_us: Vec<u64> = Vec::with_capacity(requests);
    let mut completed = 0usize;
    // Snapshot once to pin the throughput window to the start of the
    // measured interval; the post-run snapshot then reports completions
    // per second over exactly the serving span, startup excluded.
    let _ = service.metrics();
    let start = Instant::now();
    let handles: Vec<_> = (0..requests)
        .map(|i| service.try_submit(request_matrix(n, i)))
        .collect::<Result<_, _>>()?;
    for handle in handles {
        let response = handle.wait()?;
        completed += 1;
        wall_us.push(response.latency.wall_total.as_micros() as u64);
    }
    let wall = start.elapsed();
    let snapshot = service.metrics();
    service.shutdown();
    let mut measured = row("optimized", requests, completed, wall, &mut wall_us);
    measured.requests_per_sec_window = Some(snapshot.throughput_rps_window);
    measured.decompose_rps_window = Some(snapshot.per_type.decompose.throughput_rps_window);
    measured.apply_rps_window = Some(snapshot.per_type.apply.throughput_rps_window);
    measured.packed_batches = Some(snapshot.packed_batches);
    measured.packed_requests = Some(snapshot.packed_requests);
    Ok(measured)
}

/// Measures both variants on an `n×n` timing-only workload and returns
/// the report.
///
/// # Errors
///
/// Accelerator or service errors from either variant.
pub fn run(
    n: usize,
    p_eng: usize,
    p_task: usize,
    max_batch: usize,
    iterations: usize,
    requests: usize,
) -> Result<ServeReport, HeteroSvdError> {
    assert!(requests > 0, "need at least one request");
    let baseline = run_baseline(n, p_eng, p_task, max_batch, iterations, requests)?;
    let optimized = run_optimized(n, p_eng, p_task, max_batch, iterations, requests)
        .map_err(|e| HeteroSvdError::InvalidConfig(format!("serving variant failed: {e}")))?;
    let speedup = if baseline.requests_per_sec > 0.0 {
        optimized.requests_per_sec / baseline.requests_per_sec
    } else {
        f64::NAN
    };
    Ok(ServeReport {
        n,
        p_eng,
        p_task,
        max_batch,
        iterations,
        results: vec![baseline, optimized],
        speedup,
        multishape: None,
    })
}

/// Shape of the dominant (Batch-class) request stream.
const MULTISHAPE_DOMINANT: (usize, usize) = (32, 32);
/// Shape of the rare (Interactive-class) request stream.
const MULTISHAPE_RARE: (usize, usize) = (64, 64);

/// Replays the given trace through one scheduler variant and measures
/// per-shape tails, dominant throughput, and bit-identity of a sample
/// of served factors against a solo accelerator (every rare request
/// plus every 10th dominant one).
fn run_multishape_variant(
    classed: bool,
    trace: &[TraceEvent],
) -> Result<(MultiShapeRow, bool), HeteroSvdError> {
    let config = ServeConfig {
        workers: 1,
        // Roomy enough that nothing is rejected or EDF-evicted: the A/B
        // isolates *ordering*, so both variants must complete the whole
        // trace (and serve the same factor set).
        queue_capacity: trace.len().max(1),
        max_batch: 4,
        max_linger: Duration::from_millis(2),
        fixed_iterations: Some(4),
        shape_classed: classed,
        ..ServeConfig::default()
    };
    // Solo references, one per shape, pinned at the service's own plan:
    // packing and scheduling must never touch the math.
    let reference_of = |shape: (usize, usize)| -> Result<Accelerator, HeteroSvdError> {
        Accelerator::new(config.accelerator_config(shape)?)
    };
    let dominant_ref = reference_of(MULTISHAPE_DOMINANT)?;
    let rare_ref = reference_of(MULTISHAPE_RARE)?;

    let service = SvdService::start(config)
        .map_err(|e| HeteroSvdError::InvalidConfig(format!("multishape service: {e}")))?;
    let start = Instant::now();
    let mut pending = Vec::with_capacity(trace.len());
    let mut dominant_seen = 0usize;
    for event in trace {
        let due = start + Duration::from_secs_f64(event.at_ms / 1000.0);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let rare = event.shape == MULTISHAPE_RARE;
        let class = if rare {
            SloClass::Interactive
        } else {
            SloClass::Batch
        };
        // Sample for the bit-identity check: all rare + every 10th
        // dominant (solo reference runs are the expensive part).
        let sampled = rare || {
            dominant_seen += 1;
            dominant_seen % 10 == 1
        };
        let matrix = workload::random_matrix(event.shape.0, event.shape.1, event.seed);
        let sample = sampled.then(|| matrix.clone());
        let handle = service
            .try_submit_with(
                matrix,
                SubmitOptions {
                    class,
                    ..SubmitOptions::default()
                },
            )
            .map_err(|e| HeteroSvdError::InvalidConfig(format!("multishape submit: {e}")))?;
        pending.push((event.shape, sample, handle));
    }

    let mut dominant_wall_us = Vec::new();
    let mut rare_wall_us = Vec::new();
    let mut bit_identical = true;
    for (shape, sample, handle) in pending {
        let response = handle
            .wait()
            .map_err(|e| HeteroSvdError::InvalidConfig(format!("multishape wait: {e}")))?;
        let wall = response.latency.wall_total.as_micros() as u64;
        if shape == MULTISHAPE_RARE {
            rare_wall_us.push(wall);
        } else {
            dominant_wall_us.push(wall);
        }
        if let Some(matrix) = sample {
            let reference = if shape == MULTISHAPE_RARE {
                &rare_ref
            } else {
                &dominant_ref
            };
            let expected = reference.run(&matrix)?;
            let got = &response.output.result;
            let want = &expected.result;
            let same_sigma = got
                .sigma
                .iter()
                .map(|x| x.to_bits())
                .eq(want.sigma.iter().map(|x| x.to_bits()));
            if !same_sigma || got.u.as_slice() != want.u.as_slice() {
                bit_identical = false;
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let snapshot = service.metrics();
    service.shutdown();

    let dominant_completed = dominant_wall_us.len();
    let rare_completed = rare_wall_us.len();
    let row = MultiShapeRow {
        scheduler: if classed { "classed" } else { "fifo" }.to_string(),
        dominant_completed,
        rare_completed,
        dominant_p99_wall_us: Percentiles::from_samples(&mut dominant_wall_us).p99,
        rare_p99_wall_us: Percentiles::from_samples(&mut rare_wall_us).p99,
        dominant_rps: if wall > 0.0 {
            dominant_completed as f64 / wall
        } else {
            0.0
        },
        interactive_p99_wall_us: snapshot.per_class.interactive.wall_us.p99,
        batch_p99_wall_us: snapshot.per_class.batch.wall_us.p99,
        shed: snapshot.shed,
        batches_stolen: snapshot.batches_stolen,
    };
    Ok((row, bit_identical))
}

/// Runs the shape-classed-scheduler A/B on the seeded 95:5 two-shape
/// bursty trace: the identical open-loop stream through a shape-blind
/// FIFO service and through the EDF shape-classed one, gating on the
/// rare class's tail improvement, the dominant class's retained
/// throughput, and bit-identity of the served factors.
///
/// # Errors
///
/// Accelerator or service errors from either variant.
pub fn run_multishape(quick: bool, seed: u64) -> Result<MultiShapeReport, HeteroSvdError> {
    let trace = workload::multishape_trace(quick, seed);
    let (fifo, fifo_ok) = run_multishape_variant(false, &trace)?;
    let (classed, classed_ok) = run_multishape_variant(true, &trace)?;
    let factors_bit_identical = fifo_ok && classed_ok;

    let rare_p99_improvement = if classed.rare_p99_wall_us > 0 {
        fifo.rare_p99_wall_us as f64 / classed.rare_p99_wall_us as f64
    } else {
        f64::INFINITY
    };
    let dominant_throughput_ratio = if fifo.dominant_rps > 0.0 {
        classed.dominant_rps / fifo.dominant_rps
    } else {
        f64::NAN
    };

    // Quick mode (CI smoke) relaxes the gates: short traces make the
    // tail ratio noisier and the throughput denominator smaller.
    let (min_improvement, min_throughput) = if quick { (1.5, 0.90) } else { (2.0, 0.95) };
    let mut gate_violations = Vec::new();
    // `is_nan ||` (not a negated `>=`): a NaN ratio must gate too.
    if rare_p99_improvement.is_nan() || rare_p99_improvement < min_improvement {
        gate_violations.push(format!(
            "rare-class p99 improvement {rare_p99_improvement:.2}x < required {min_improvement:.2}x"
        ));
    }
    if dominant_throughput_ratio.is_nan() || dominant_throughput_ratio < min_throughput {
        gate_violations.push(format!(
            "dominant throughput ratio {dominant_throughput_ratio:.3} < required {min_throughput:.2}"
        ));
    }
    if !factors_bit_identical {
        gate_violations.push("served factors diverged from the solo accelerator".to_string());
    }

    Ok(MultiShapeReport {
        seed,
        quick,
        dominant_shape: format!("{}x{}", MULTISHAPE_DOMINANT.0, MULTISHAPE_DOMINANT.1),
        rare_shape: format!("{}x{}", MULTISHAPE_RARE.0, MULTISHAPE_RARE.1),
        events: trace.len(),
        rows: vec![fifo, classed],
        rare_p99_improvement,
        dominant_throughput_ratio,
        factors_bit_identical,
        gate_violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both variants complete every request on a small workload and the
    /// report is internally consistent.
    #[test]
    fn small_workload_report_is_consistent() {
        let report = run(32, 2, 2, 4, 3, 8).unwrap();
        assert_eq!(report.results.len(), 2);
        for r in &report.results {
            assert_eq!(r.completed, 8, "{} dropped requests", r.variant);
            assert!(r.requests_per_sec > 0.0, "{}: zero throughput", r.variant);
            assert!(r.p99_wall_us >= r.p50_wall_us);
            match r.variant.as_str() {
                "optimized" => {
                    let w = r.requests_per_sec_window.expect("windowed rate present");
                    assert!(w > 0.0, "windowed rate should cover the serving span");
                    let d = r.decompose_rps_window.expect("per-type rate present");
                    assert!(d > 0.0, "decompose-class rate should be nonzero");
                    assert_eq!(r.apply_rps_window, Some(0.0), "no apply traffic here");
                    assert!(r.packed_batches.is_some() && r.packed_requests.is_some());
                }
                _ => {
                    assert!(r.requests_per_sec_window.is_none());
                    assert!(r.decompose_rps_window.is_none());
                    assert!(r.packed_batches.is_none());
                }
            }
        }
        assert!(report.speedup.is_finite());
    }

    /// The multi-shape A/B completes the identical trace under both
    /// schedulers, serves bit-identical factors, and never trails FIFO
    /// on the rare class's tail. (The full ≥2x-improvement gate is
    /// enforced by `repro -- serve`, where the trace is long enough to
    /// be stable; here we pin the invariants that must never flake.)
    #[test]
    fn multishape_ab_is_consistent_and_bit_identical() {
        let report = run_multishape(true, 42).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].scheduler, "fifo");
        assert_eq!(report.rows[1].scheduler, "classed");
        for row in &report.rows {
            assert!(
                row.rare_completed >= 4,
                "{}: rare starved out",
                row.scheduler
            );
            assert!(
                row.dominant_completed >= row.rare_completed * 10,
                "{}: mix collapsed",
                row.scheduler
            );
            assert_eq!(
                row.shed, 0,
                "{}: nothing should shed at this depth",
                row.scheduler
            );
        }
        assert_eq!(
            report.rows[0].dominant_completed, report.rows[1].dominant_completed,
            "both variants must complete the identical trace"
        );
        assert_eq!(report.rows[0].rare_completed, report.rows[1].rare_completed);
        assert!(report.factors_bit_identical, "scheduling touched the math");
        assert!(
            report.rare_p99_improvement >= 1.0,
            "classed scheduler made the rare tail worse: {:.2}x",
            report.rare_p99_improvement
        );
        assert!(report.dominant_throughput_ratio.is_finite());
        // Schema stability: the report roundtrips through JSON with the
        // per-class fields the CI smoke checks for.
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("rare_p99_improvement"));
        assert!(json.contains("interactive_p99_wall_us"));
        let back: MultiShapeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.events, report.events);
    }
}
