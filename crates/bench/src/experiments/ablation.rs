//! Ablation of the algorithm-hardware co-design (DESIGN.md §4.2):
//! end-to-end latency and DMA counts for each combination of the two
//! design choices — SVD ordering (ring vs shifting ring) and output
//! dataflow (naive vs relocated).
//!
//! This experiment is not in the paper (which only evaluates the full
//! co-design) but directly supports its §III-B argument: *both* halves
//! are needed, and the shifting ring without the relocation is useless.

use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig, HeteroSvdError};
use serde::{Deserialize, Serialize};
use svd_orderings::movement::{DataflowKind, OrderingKind};

/// One ablation variant's measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label.
    pub name: String,
    /// Ordering used.
    pub ordering: OrderingKind,
    /// Dataflow used.
    pub dataflow: DataflowKind,
    /// Simulated latency (ms, six iterations).
    pub latency_ms: f64,
    /// Total inter-tile DMA transfers.
    pub dma_transfers: usize,
    /// Total neighbor accesses.
    pub neighbor_accesses: usize,
    /// DMA bytes moved.
    pub dma_bytes: usize,
}

/// The four ablation corners.
pub const VARIANTS: [(&str, OrderingKind, DataflowKind); 4] = [
    (
        "ring + naive (traditional)",
        OrderingKind::Ring,
        DataflowKind::NaiveMemory,
    ),
    (
        "ring + relocated",
        OrderingKind::Ring,
        DataflowKind::Relocated,
    ),
    (
        "shifting + naive",
        OrderingKind::ShiftingRing,
        DataflowKind::NaiveMemory,
    ),
    (
        "shifting + relocated (co-design)",
        OrderingKind::ShiftingRing,
        DataflowKind::Relocated,
    ),
];

/// Runs the ablation on an `rows × cols` problem with engine parallelism
/// `p_eng` (`p_eng = 3` keeps the layers in one band, isolating the
/// co-design effect from band-break DMA). Tall matrices (large `rows`)
/// make the DMA transfer time comparable to the kernel time, which is
/// the regime where the co-design's latency win appears — with short
/// columns the DMA hides entirely under the kernels and only the memory
/// doubling matters.
///
/// # Errors
///
/// Propagates configuration/placement errors.
pub fn run(rows: usize, cols: usize, p_eng: usize) -> Result<Vec<AblationRow>, HeteroSvdError> {
    let mut variant_rows = Vec::with_capacity(VARIANTS.len());
    for (name, ordering, dataflow) in VARIANTS {
        let cfg = HeteroSvdConfig::builder(rows, cols)
            .engine_parallelism(p_eng)
            .ordering(ordering)
            .dataflow(dataflow)
            .pl_freq_mhz(208.3)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(6)
            .build()?;
        let out = Accelerator::new(cfg)?.run(&svd_kernels::Matrix::zeros(rows, cols))?;
        variant_rows.push(AblationRow {
            name: name.to_string(),
            ordering,
            dataflow,
            latency_ms: out.timing.task_time.as_millis(),
            dma_transfers: out.stats.dma_transfers,
            neighbor_accesses: out.stats.neighbor_accesses,
            dma_bytes: out.stats.dma_bytes,
        });
    }
    Ok(variant_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codesign_is_best_on_both_axes() {
        // Tall columns: DMA is on the critical path.
        let rows = run(1024, 24, 3).unwrap();
        let codesign = rows.last().unwrap();
        for other in &rows[..3] {
            assert!(
                codesign.latency_ms < other.latency_ms,
                "codesign {} ms vs {} {} ms",
                codesign.latency_ms,
                other.name,
                other.latency_ms
            );
            assert!(codesign.dma_transfers < other.dma_transfers);
        }
    }

    #[test]
    fn short_columns_hide_dma_latency() {
        // With short columns the kernels cover the transfers: all four
        // variants tie on latency while the DMA counts still differ —
        // the memory saving is the only win in this regime.
        let rows = run(48, 48, 3).unwrap();
        let codesign = rows.last().unwrap();
        assert!(rows
            .iter()
            .all(|r| (r.latency_ms - codesign.latency_ms).abs() < 0.05 * codesign.latency_ms));
        assert!(codesign.dma_transfers < rows[0].dma_transfers);
    }

    #[test]
    fn dma_counts_follow_the_analysis_ratios() {
        let rows = run(48, 48, 3).unwrap();
        // ring+naive = 2k(k-1) = 12/pass, codesign = 2(k-1) = 4/pass.
        assert_eq!(rows[0].dma_transfers, 3 * rows[3].dma_transfers);
    }

    #[test]
    fn movement_totals_are_conserved() {
        // Movements per pass are constant (2k per transition); only the
        // DMA/neighbor split changes across variants.
        let rows = run(48, 48, 3).unwrap();
        let total0 = rows[0].dma_transfers + rows[0].neighbor_accesses;
        for r in &rows[1..] {
            assert_eq!(r.dma_transfers + r.neighbor_accesses, total0);
        }
    }
}
