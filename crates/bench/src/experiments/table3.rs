//! Table III: latency, throughput and energy efficiency against the GPU
//! baseline \[11\] (batched, converged at 1e-6).
//!
//! Per the paper, the HeteroSVD configuration for each scenario comes
//! from the DSE flow; iterations run until the convergence rate drops
//! below 1e-6 (measured on the reference solver for our random
//! workloads).

use crate::workload::iterations_to_converge;
use baselines::GpuBaseline;
use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig, HeteroSvdError};
use heterosvd_dse::{run_dse, DseConfig, Objective};
use serde::{Deserialize, Serialize};

/// Batch size of the Table III protocol.
pub const BATCH: usize = 100;

/// Paper's published Table III numbers:
/// `(n, gpu latency s, gpu tasks/s, gpu EE, hsvd latency s, hsvd tasks/s, hsvd EE)`.
pub const PAPER_ROWS: [(usize, f64, f64, f64, f64, f64, f64); 4] = [
    (128, 0.0166, 1351.35, 5.005, 0.0023, 2389.69, 65.940),
    (256, 0.0429, 217.39, 0.805, 0.0130, 239.48, 6.251),
    (512, 0.1237, 27.55, 0.102, 0.1076, 24.42, 0.663),
    (1024, 0.6857, 3.52, 0.013, 0.7937, 1.27, 0.057),
];

/// One regenerated row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Matrix size `n`.
    pub n: usize,
    /// Convergence iterations used for HeteroSVD.
    pub iterations: usize,
    /// GPU single-matrix latency (s).
    pub gpu_latency: f64,
    /// GPU batch throughput (tasks/s).
    pub gpu_throughput: f64,
    /// GPU energy efficiency (tasks/s/W).
    pub gpu_ee: f64,
    /// HeteroSVD single-matrix latency (s), latency-optimal config.
    pub hsvd_latency: f64,
    /// HeteroSVD batch throughput (tasks/s), throughput-optimal config.
    pub hsvd_throughput: f64,
    /// HeteroSVD energy efficiency (tasks/s/W).
    pub hsvd_ee: f64,
    /// Throughput-optimal `(P_eng, P_task)` from the DSE.
    pub tp_config: (usize, usize),
}

/// Regenerates Table III for the given sizes.
///
/// # Errors
///
/// Propagates configuration/placement errors; fails if the DSE finds no
/// feasible design (cannot happen for the paper's sizes).
pub fn run(sizes: &[usize]) -> Result<Vec<Table3Row>, HeteroSvdError> {
    let gpu = GpuBaseline::published();
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let iterations = iterations_to_converge(n, 8, 0xC0FFEE);

        // Latency scenario: best single-task design.
        let lat_dse = run_dse(&DseConfig::new(n, n).batch(1).iterations(iterations));
        let lat_best = lat_dse
            .best(Objective::MinLatency)
            .ok_or_else(|| HeteroSvdError::InvalidConfig(format!("no feasible design for {n}")))?
            .clone();
        let hsvd_latency = simulate_task_seconds(
            n,
            lat_best.point.engine_parallelism,
            lat_best.point.task_parallelism,
            lat_best.point.pl_freq_mhz,
            iterations,
        )?;

        // Throughput scenario: best batch-100 design.
        let tp_dse = run_dse(&DseConfig::new(n, n).batch(BATCH).iterations(iterations));
        let tp_best = tp_dse
            .best(Objective::MaxThroughput)
            .ok_or_else(|| HeteroSvdError::InvalidConfig(format!("no feasible design for {n}")))?
            .clone();
        let task_s = simulate_task_seconds(
            n,
            tp_best.point.engine_parallelism,
            tp_best.point.task_parallelism,
            tp_best.point.pl_freq_mhz,
            iterations,
        )?;
        let waves = BATCH.div_ceil(tp_best.point.task_parallelism);
        let hsvd_throughput = BATCH as f64 / (task_s * waves as f64);
        let hsvd_ee = hsvd_throughput / tp_best.power_watts;

        rows.push(Table3Row {
            n,
            iterations,
            gpu_latency: gpu.latency(n),
            gpu_throughput: gpu.throughput(n, BATCH),
            gpu_ee: gpu.energy_efficiency(n, BATCH),
            hsvd_latency,
            hsvd_throughput,
            hsvd_ee,
            tp_config: (
                tp_best.point.engine_parallelism,
                tp_best.point.task_parallelism,
            ),
        });
    }
    Ok(rows)
}

/// Simulates one task at the given design point, returning `t_task` in
/// seconds.
fn simulate_task_seconds(
    n: usize,
    p_eng: usize,
    p_task: usize,
    freq_mhz: f64,
    iterations: usize,
) -> Result<f64, HeteroSvdError> {
    let cfg = HeteroSvdConfig::builder(n, n)
        .engine_parallelism(p_eng)
        .task_parallelism(p_task)
        .pl_freq_mhz(freq_mhz)
        .fidelity(FidelityMode::TimingOnly)
        .fixed_iterations(iterations.max(1))
        .build()?;
    let acc = Accelerator::new(cfg)?;
    let out = acc.run(&svd_kernels::Matrix::zeros(n, n))?;
    Ok(out.timing.task_time.as_secs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sizes_beat_gpu_in_latency_and_ee() {
        let rows = run(&[128]).unwrap();
        let r = &rows[0];
        assert!(
            r.hsvd_latency < r.gpu_latency,
            "hsvd {} vs gpu {}",
            r.hsvd_latency,
            r.gpu_latency
        );
        assert!(r.hsvd_ee > r.gpu_ee, "EE {} vs {}", r.hsvd_ee, r.gpu_ee);
    }

    #[test]
    fn iterations_come_from_convergence() {
        let rows = run(&[64]).unwrap();
        assert!((3..=15).contains(&rows[0].iterations));
    }

    #[test]
    fn throughput_config_uses_task_parallelism() {
        let rows = run(&[128]).unwrap();
        assert!(rows[0].tp_config.1 > 1, "P_task = {}", rows[0].tp_config.1);
    }
}
