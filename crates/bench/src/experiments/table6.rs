//! Table VI: how the micro-architecture parameters trade latency,
//! throughput and power at 256×256, 208.3 MHz, six iterations.
//!
//! For each `P_eng` the task parallelism is maximized under the Eq. (16)
//! budgets (stage 1 of the DSE). `P_eng = 6` does not divide 256, so —
//! like the paper must have done — the problem is padded to the next
//! multiple of `2·P_eng` (264) for that row.

use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig, HeteroSvdError};
use heterosvd_dse::{evaluate_point, DseConfig};
use serde::{Deserialize, Serialize};

/// The fixed PL frequency of the Table VI protocol.
pub const FREQ_MHZ: f64 = 208.3;
/// Iterations per design point.
pub const ITERATIONS: usize = 6;

/// Paper's published Table VI rows:
/// `(P_eng, P_task, AIE, URAM, latency ms, tasks/s, watts)`.
pub const PAPER_ROWS: [(usize, usize, usize, usize, f64, f64, f64); 4] = [
    (2, 26, 293, 416, 35.689, 707.501, 44.16),
    (4, 9, 357, 144, 19.303, 508.436, 34.63),
    (6, 4, 366, 120, 13.117, 306.876, 30.79),
    (8, 2, 322, 32, 9.247, 219.257, 26.06),
];

/// One regenerated row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table6Row {
    /// Engine parallelism.
    pub p_eng: usize,
    /// Maximum feasible task parallelism.
    pub p_task: usize,
    /// AIE tiles used.
    pub aie: usize,
    /// URAM blocks used.
    pub uram: usize,
    /// Simulated single-task latency (ms, six iterations).
    pub latency_ms: f64,
    /// Steady-state throughput (tasks/s) with all pipelines busy.
    pub throughput: f64,
    /// Estimated power (W).
    pub power_watts: f64,
}

/// Regenerates Table VI at size `n` for the given engine parallelisms.
///
/// # Errors
///
/// Propagates configuration errors; fails when a `P_eng` has no feasible
/// `P_task` at all.
pub fn run(n: usize, p_engs: &[usize]) -> Result<Vec<Table6Row>, HeteroSvdError> {
    let mut rows = Vec::with_capacity(p_engs.len());
    for &p_eng in p_engs {
        // Pad to the next multiple of 2*P_eng when needed (e.g. 256 -> 264
        // for P_eng = 6).
        let padded = n.div_ceil(2 * p_eng) * 2 * p_eng;
        let dse_cfg = DseConfig::new(padded, padded)
            .iterations(ITERATIONS)
            .freq_mhz(FREQ_MHZ);

        // Stage 1: maximize task parallelism under the budgets.
        let mut best = None;
        for p_task in 1..=heterosvd::config::MAX_TASK_PARALLELISM {
            if let Some(eval) = evaluate_point(&dse_cfg, p_eng, p_task) {
                best = Some(eval);
            }
        }
        let eval = best.ok_or_else(|| {
            HeteroSvdError::InvalidConfig(format!("no feasible P_task for P_eng={p_eng}"))
        })?;
        let p_task = eval.point.task_parallelism;

        // Measure the latency on the simulator (the DSE number is the
        // analytic estimate).
        let cfg = HeteroSvdConfig::builder(padded, padded)
            .engine_parallelism(p_eng)
            .task_parallelism(p_task)
            .pl_freq_mhz(FREQ_MHZ)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(ITERATIONS)
            .build()?;
        let acc = Accelerator::new(cfg)?;
        let out = acc.run(&svd_kernels::Matrix::zeros(padded, padded))?;
        let latency_s = out.timing.task_time.as_secs();

        rows.push(Table6Row {
            p_eng,
            p_task,
            aie: eval.usage.aie,
            uram: eval.usage.uram,
            latency_ms: latency_s * 1e3,
            throughput: p_task as f64 / latency_s,
            power_watts: eval.power_watts,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table6_p_task_column() {
        // The placement model yields exactly the paper's maximum task
        // parallelism for each P_eng at 256x256.
        let rows = run(256, &[2, 4, 8]).unwrap();
        let expect = [(2usize, 26usize), (4, 9), (8, 2)];
        for (row, (p_eng, p_task)) in rows.iter().zip(expect) {
            assert_eq!(row.p_eng, p_eng);
            assert_eq!(
                row.p_task, p_task,
                "P_eng={p_eng}: max P_task {} vs paper {p_task}",
                row.p_task
            );
        }
    }

    #[test]
    fn latency_throughput_power_trends_match_paper() {
        let rows = run(256, &[2, 4, 8]).unwrap();
        // P_eng up: latency down, throughput down, power down.
        for w in rows.windows(2) {
            assert!(w[1].latency_ms < w[0].latency_ms);
            assert!(w[1].throughput < w[0].throughput);
            assert!(w[1].power_watts < w[0].power_watts);
        }
    }

    #[test]
    fn padded_p_eng6_runs() {
        let rows = run(256, &[6]).unwrap();
        assert_eq!(rows[0].p_eng, 6);
        assert!(rows[0].p_task >= 2);
    }

    #[test]
    fn aie_counts_near_paper() {
        let rows = run(256, &[2, 4, 8]).unwrap();
        let paper = [293.0, 357.0, 322.0];
        for (row, paper_aie) in rows.iter().zip(paper) {
            let rel = (row.aie as f64 - paper_aie).abs() / paper_aie;
            assert!(
                rel < 0.12,
                "P_eng={}: {} AIEs vs paper {paper_aie}",
                row.p_eng,
                row.aie
            );
        }
    }
}
