//! Table II: latency and resource comparison against the FPGA baseline
//! \[6\] (six Jacobi iterations per matrix).
//!
//! The paper's HeteroSVD configuration for this table uses 128 AIEs (32%
//! of the array), which is exactly the `P_eng = 8` design: 120 orth-AIEs
//! plus 8 norm-AIEs. Each size runs at its achievable PL frequency.

use baselines::FpgaBaseline;
use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig, HeteroSvdError};
use serde::{Deserialize, Serialize};

/// Jacobi iterations fixed by the Table II protocol (§V-B).
pub const ITERATIONS: usize = 6;
/// Engine parallelism of the paper's Table II design.
pub const P_ENG: usize = 8;

/// Paper's published Table II numbers: `(n, fpga s, hsvd s, speedup)`.
pub const PAPER_ROWS: [(usize, f64, f64, f64); 4] = [
    (128, 0.0014, 0.0011, 1.27),
    (256, 0.0113, 0.0057, 1.98),
    (512, 0.0829, 0.0435, 1.90),
    (1024, 0.6119, 0.3415, 1.79),
];

/// One regenerated row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Matrix size `n`.
    pub n: usize,
    /// FPGA baseline latency in seconds (published model).
    pub fpga_latency: f64,
    /// Simulated HeteroSVD latency in seconds.
    pub hsvd_latency: f64,
    /// Speedup of HeteroSVD over the FPGA.
    pub speedup: f64,
    /// HeteroSVD URAM usage.
    pub uram: usize,
    /// HeteroSVD AIE usage (orth + norm + mem).
    pub aie: usize,
    /// HeteroSVD LUT usage.
    pub luts: usize,
    /// PL frequency used (MHz).
    pub freq_mhz: f64,
}

/// Regenerates Table II for the given sizes.
///
/// # Errors
///
/// Propagates configuration/placement errors from the accelerator.
pub fn run(sizes: &[usize]) -> Result<Vec<Table2Row>, HeteroSvdError> {
    let fpga = FpgaBaseline::published();
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(P_ENG)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(ITERATIONS)
            .build()?;
        let freq_mhz = cfg.pl_freq.mhz();
        let acc = Accelerator::new(cfg)?;
        let a = svd_kernels::Matrix::zeros(n, n);
        let out = acc.run(&a)?;
        let hsvd_latency = out.timing.task_time.as_secs();
        let fpga_latency = fpga.latency(n, ITERATIONS);
        rows.push(Table2Row {
            n,
            fpga_latency,
            hsvd_latency,
            speedup: fpga_latency / hsvd_latency,
            uram: out.usage.uram,
            aie: out.usage.aie,
            luts: out.usage.luts,
            freq_mhz,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterosvd_beats_fpga_at_small_sizes() {
        let rows = run(&[128, 256]).unwrap();
        for row in &rows {
            assert!(row.speedup > 1.0, "n={}: speedup {:.2}", row.n, row.speedup);
        }
    }

    #[test]
    fn speedups_are_in_the_paper_ballpark() {
        // Paper reports 1.27x-1.98x; allow a generous band since the
        // substrate is a simulator.
        let rows = run(&[128, 256]).unwrap();
        for row in &rows {
            assert!(
                (0.8..4.0).contains(&row.speedup),
                "n={}: speedup {:.2} out of band",
                row.n,
                row.speedup
            );
        }
    }

    #[test]
    fn resources_stay_modest() {
        let rows = run(&[128]).unwrap();
        let r = &rows[0];
        // Paper: 128 orth+norm AIEs = 32%; our count adds mem-AIEs.
        assert!(r.aie >= 128 && r.aie <= 200, "aie = {}", r.aie);
        assert!(r.uram <= 16);
        assert!(r.luts < 20_000);
    }
}
