//! Incremental-SVD serving benchmark (serialized to
//! `BENCH_update.json`): the warm-start / low-rank update path against
//! full recompute on an update-heavy per-client trace.
//!
//! The trace models the production pattern the incremental path exists
//! for: each client owns a slowly-drifting low-rank matrix and
//! re-submits it after small perturbations. Per client the stream is
//!
//! 1. a cold start (the baseline full solve that seeds the cache),
//! 2. rank-1 row/column bumps (the `LowRank` fast path — host-only
//!    Brand updates of the cached truncated factors, zero modeled
//!    accelerator time),
//! 3. one dense-ish drift whose delta rank exceeds the low-rank budget
//!    but stays inside the staleness bound (the `WarmStart` route: a
//!    Jacobi solve seeded from the cached right basis),
//! 4. one shock whose relative delta trips `max_delta_rel` (the
//!    staleness fallback — a full recompute, by contract bit-identical
//!    to the same matrix through an `incremental = off` service),
//! 5. an identical resubmission (the `LowRank {rank: 0}` route served
//!    straight from the cache).
//!
//! The identical trace runs through two services: **incremental** (the
//! update path, `try_submit_update`) and **full** (`incremental` off,
//! every request a cold `try_submit` decompose). Both run the same
//! functional fidelity, worker count, and submission order, so the
//! wall-clock ratio is the end-to-end speedup of the update path.
//! Exactness rides along: served spectra are compared against the `f64`
//! golden model, and every full-recompute route (cold start or
//! staleness fallback) must be bit-identical to the `incremental = off`
//! service's answer for the same matrix.

use heterosvd::HeteroSvdError;
use heterosvd_serve::{
    ClientId, FallbackReason, ServeConfig, SvdService, UpdateResponse, UpdateRoute,
};
use rand::distributions::{Distribution, StandardNormal};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use svd_kernels::{hestenes_jacobi, JacobiOptions, Matrix};

/// Engine parallelism of both measured services (cols must be a
/// multiple of `2 · P_eng`, so every power-of-two size ≥ 64 is legal).
pub const P_ENG: usize = 4;
/// Effective rank of each client's base matrix: a decaying spectrum
/// with this many significant components.
pub const EFF_RANK: usize = 6;
/// Truncation rank of the cached factors. Sized so the whole trace's
/// rank growth (base + bump directions + drift + shock) stays inside
/// it and the low-rank path never discards signal.
pub const CACHE_RANK: usize = 24;
/// Delta-rank budget of the low-rank fast path: rank-1 bumps qualify,
/// the rank-[`DRIFT_RANK`] drift does not (it warm-starts instead).
pub const MAX_UPDATE_RANK: usize = 2;
/// Rank of the mid-trace drift perturbation.
const DRIFT_RANK: usize = 4;
/// Largest spectrum component of every base matrix.
const SIGMA0: f64 = 32.0;
/// The trace's sv-error gate vs the `f64` golden model.
pub const SV_ERROR_GATE: f64 = 1e-5;
/// The end-to-end speedup gate at `n ≥ min_gate_n`.
pub const SPEEDUP_GATE: f64 = 5.0;

/// What one request of the per-client stream does to the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// First request: the base matrix itself (cold start).
    Base,
    /// Rank-1 row or column perturbation (low-rank fast path).
    Bump,
    /// Rank-[`DRIFT_RANK`] drift inside the staleness bound (warm start).
    Drift,
    /// Large low-rank shock past `max_delta_rel` (staleness fallback).
    Shock,
    /// Identical resubmission (rank-0 low-rank route).
    Resubmit,
}

/// The request schedule: drift at 2/5 of the stream, shock at 7/10,
/// an identical resubmission right after the shock, bumps elsewhere.
fn kind(i: usize, requests: usize) -> Kind {
    assert!(requests >= 8, "the trace needs at least 8 requests");
    if i == 0 {
        Kind::Base
    } else if i == requests * 2 / 5 {
        Kind::Drift
    } else if i == requests * 7 / 10 {
        Kind::Shock
    } else if i == requests * 7 / 10 + 1 {
        Kind::Resubmit
    } else {
        Kind::Bump
    }
}

fn gauss(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| StandardNormal.sample(rng)).collect()
}

fn unit(mut v: Vec<f64>) -> Vec<f64> {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);
    for x in &mut v {
        *x /= norm;
    }
    v
}

/// `a += s · u·vᵀ`.
fn outer_add(a: &mut Matrix<f64>, s: f64, u: &[f64], v: &[f64]) {
    for (r, &ur) in u.iter().enumerate() {
        for (c, &vc) in v.iter().enumerate() {
            a[(r, c)] += s * ur * vc;
        }
    }
}

/// A rank-`EFF_RANK` base matrix with spectrum `SIGMA0 · 0.6^i`.
fn base_matrix(rng: &mut StdRng, n: usize) -> Matrix<f64> {
    let mut a = Matrix::zeros(n, n);
    for i in 0..EFF_RANK {
        let u = unit(gauss(rng, n));
        let v = unit(gauss(rng, n));
        outer_add(&mut a, SIGMA0 * 0.6f64.powi(i as i32), &u, &v);
    }
    a
}

/// Adds a rank-`rank` perturbation scaled to `ratio · ‖A‖_F`.
fn add_scaled_noise(rng: &mut StdRng, a: &mut Matrix<f64>, rank: usize, ratio: f64) {
    let n = a.rows();
    let mut delta = Matrix::zeros(n, n);
    for _ in 0..rank {
        let u = unit(gauss(rng, n));
        let v = unit(gauss(rng, n));
        outer_add(&mut delta, 1.0, &u, &v);
    }
    let scale = ratio * a.frobenius_norm() / delta.frobenius_norm().max(1e-300);
    for r in 0..n {
        for c in 0..n {
            a[(r, c)] += scale * delta[(r, c)];
        }
    }
}

/// One client's request stream: the matrix each request submits.
///
/// Bumps cycle over three fixed row/column targets so repeated bumps
/// revisit the same directions and the trace's total rank stays within
/// [`CACHE_RANK`].
fn client_trace(n: usize, client: u64, requests: usize) -> Vec<Matrix<f64>> {
    let mut rng = StdRng::seed_from_u64(0x0DD5_EED0 ^ (client.wrapping_mul(7919)));
    let mut a = base_matrix(&mut rng, n);
    let mut bumps = 0usize;
    (0..requests)
        .map(|i| {
            match kind(i, requests) {
                Kind::Base | Kind::Resubmit => {}
                Kind::Bump => {
                    // Rank-1 perturbation of one column (even bumps) or
                    // one row (odd bumps), ~3% of ‖A‖_F.
                    let j = bumps / 2 % 3;
                    let g = unit(gauss(&mut rng, n));
                    let s = 0.03 * a.frobenius_norm();
                    if bumps.is_multiple_of(2) {
                        for r in 0..n {
                            a[(r, j)] += s * g[r];
                        }
                    } else {
                        for c in 0..n {
                            a[(j, c)] += s * g[c];
                        }
                    }
                    bumps += 1;
                }
                Kind::Drift => add_scaled_noise(&mut rng, &mut a, DRIFT_RANK, 0.08),
                Kind::Shock => add_scaled_noise(&mut rng, &mut a, 2, 0.5),
            }
            a.clone()
        })
        .collect()
}

fn service_config(n: usize, incremental: bool) -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_capacity: 64,
        max_batch: 1,
        max_linger: Duration::from_micros(20),
        engine_parallelism: P_ENG,
        incremental,
        update_cache_rank: CACHE_RANK.min(n),
        max_update_rank: MAX_UPDATE_RANK,
        // The trace is long and bump-heavy by design; the warm-solve
        // budget is not the behavior under test (the serve suite covers
        // WarmBudgetExhausted), so keep it out of the way.
        max_warm_solves: 64,
        ..ServeConfig::default()
    }
}

/// One matrix-size point of the incremental-vs-full comparison.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct UpdateRow {
    /// Matrix dimension of the workload (n×n).
    pub n: usize,
    /// Clients in the trace.
    pub clients: usize,
    /// Total requests pushed through each service.
    pub requests: usize,
    /// Wall-clock seconds for the trace through the incremental service.
    pub incremental_wall_secs: f64,
    /// Wall-clock seconds for the same trace as full recomputes.
    pub full_wall_secs: f64,
    /// `full_wall_secs / incremental_wall_secs`.
    pub speedup: f64,
    /// Summed modeled accelerator time of the incremental run, ms
    /// (low-rank routes charge zero — they never touch the array).
    pub incremental_modeled_ms: f64,
    /// Summed modeled accelerator time of the full-recompute run, ms.
    pub full_modeled_ms: f64,
    /// Warm-started solves (service counter).
    pub warm_start_hits: u64,
    /// Low-rank fast-path hits, including rank-0 resubmissions.
    pub lowrank_hits: u64,
    /// Classification-driven full recomputes (the shock requests).
    pub staleness_fallbacks: u64,
    /// Cache-miss full solves (one per client).
    pub cold_starts: u64,
    /// Mean Jacobi sweeps of the warm-started solves.
    pub mean_warm_sweeps: f64,
    /// Max relative sv error vs the `f64` golden model over the checked
    /// requests (normalized by the golden `σ_max`).
    pub max_sv_rel_error: f64,
    /// Requests actually compared against a golden solve (all of them
    /// at n ≤ 128; a per-client sample of routes above that).
    pub golden_checked: usize,
    /// Whether every full-recompute route served a spectrum
    /// bit-identical to the `incremental = off` service's.
    pub fallback_bit_identical: bool,
    /// Factor-cache resident bytes after the trace.
    pub cache_resident_bytes: u64,
    /// Factor-cache windowed hit rate over the trace.
    pub cache_hit_rate_window: f64,
}

/// The complete report (serialized to `BENCH_update.json`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct UpdateReport {
    /// Clients per measured size.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Truncation rank of the cached factors.
    pub update_cache_rank: usize,
    /// Delta-rank budget of the low-rank path.
    pub max_update_rank: usize,
    /// One row per measured matrix size.
    pub rows: Vec<UpdateRow>,
}

fn sorted_desc(sigma: &[f32]) -> Vec<f32> {
    let mut s = sigma.to_vec();
    s.sort_by(|a, b| b.total_cmp(a));
    s
}

/// Max `|σ_served − σ_golden| / σ_golden_max`. The served spectrum may
/// be truncated (the low-rank routes serve the cached rank); missing
/// tail entries compare against the golden tail as zeros, so a
/// truncation that discards real signal shows up as error.
fn sv_rel_error(golden_desc: &[f64], served: &[f32]) -> f64 {
    let scale = golden_desc.first().copied().unwrap_or(0.0).max(1e-300);
    let mut s: Vec<f64> = served.iter().map(|&x| f64::from(x)).collect();
    s.sort_by(|a, b| b.total_cmp(a));
    s.resize(golden_desc.len(), 0.0);
    golden_desc
        .iter()
        .zip(&s)
        .map(|(g, m)| (g - m).abs() / scale)
        .fold(0.0, f64::max)
}

/// Measures one size point: the same round-robin trace through the
/// incremental service and the full-recompute service.
fn run_size(n: usize, clients: usize, requests_per_client: usize) -> Result<UpdateRow, String> {
    let traces: Vec<Vec<Matrix<f64>>> = (0..clients)
        .map(|c| client_trace(n, c as u64, requests_per_client))
        .collect();

    // --- Incremental service: classify-and-route updates.
    let service = SvdService::start(service_config(n, true)).map_err(|e| e.to_string())?;
    let mut responses: Vec<UpdateResponse> = Vec::with_capacity(clients * requests_per_client);
    let start = Instant::now();
    for i in 0..requests_per_client {
        for (c, trace) in traces.iter().enumerate() {
            // Per-client requests are strictly sequential (each refresh
            // of the cache entry classifies the next update); clients
            // interleave round-robin, as concurrent tenants would.
            let response = service
                .try_submit_update(ClientId(c as u64), trace[i].clone())
                .and_then(|h| h.wait())
                .map_err(|e| format!("update n={n} client={c} request={i}: {e}"))?;
            responses.push(response);
        }
    }
    let incremental_wall = start.elapsed();
    let metrics = service.metrics();
    let cache = service.factor_cache().stats();
    service.shutdown();

    // --- Full-recompute service: the identical trace, incremental off.
    let service = SvdService::start(service_config(n, false)).map_err(|e| e.to_string())?;
    let mut full_sigma: Vec<Vec<f32>> = Vec::with_capacity(responses.len());
    let mut full_modeled_ps = 0u64;
    let start = Instant::now();
    for i in 0..requests_per_client {
        for (c, trace) in traces.iter().enumerate() {
            let response = service
                .try_submit(trace[i].clone())
                .and_then(|h| h.wait())
                .map_err(|e| format!("full n={n} client={c} request={i}: {e}"))?;
            full_modeled_ps += response.latency.sim_exec_ps;
            full_sigma.push(sorted_desc(&response.output.result.sigma));
        }
    }
    let full_wall = start.elapsed();
    service.shutdown();

    // --- Exactness: every full-recompute route (cold start and
    // staleness fallback) must be bit-identical to the off-service.
    let mut fallback_bit_identical = true;
    let mut full_routes = 0usize;
    for (response, full) in responses.iter().zip(&full_sigma) {
        if matches!(response.route, UpdateRoute::Full(_)) {
            full_routes += 1;
            if response.sigma != *full {
                fallback_bit_identical = false;
            }
        }
    }
    if full_routes == 0 {
        fallback_bit_identical = false; // nothing proved — fail the gate
    }

    // --- Accuracy vs the f64 golden model. Every request is checked at
    // small n; above that, a per-client sample covering each route
    // class (the warm start, the fallback, the post-fallback cache
    // serve, and the stream tail) keeps golden cost bounded.
    let drift_at = requests_per_client * 2 / 5;
    let shock_at = requests_per_client * 7 / 10;
    let checked_requests: Vec<usize> = (0..requests_per_client)
        .filter(|&i| {
            n <= 128 || [drift_at, shock_at, shock_at + 1, requests_per_client - 1].contains(&i)
        })
        .collect();
    let mut max_sv_rel_error = 0.0f64;
    let mut golden_checked = 0usize;
    for &i in &checked_requests {
        for (c, trace) in traces.iter().enumerate() {
            let golden = hestenes_jacobi(&trace[i], &JacobiOptions::default())
                .map_err(|e| format!("golden n={n} client={c} request={i}: {e}"))?;
            let golden_desc: Vec<f64> = golden.sorted_singular_values();
            let response = &responses[i * clients + c];
            let err = sv_rel_error(&golden_desc, &response.sigma);
            max_sv_rel_error = max_sv_rel_error.max(err);
            golden_checked += 1;
        }
    }

    // --- Route accounting from the responses themselves (the service
    // counters corroborate via the metrics snapshot).
    let cold_starts = responses
        .iter()
        .filter(|r| r.route == UpdateRoute::Full(FallbackReason::ColdStart))
        .count() as u64;
    let warm_sweeps: Vec<usize> = responses
        .iter()
        .filter_map(|r| r.warm_start.map(|w| w.warm_iterations))
        .collect();
    let mean_warm_sweeps = if warm_sweeps.is_empty() {
        0.0
    } else {
        warm_sweeps.iter().sum::<usize>() as f64 / warm_sweeps.len() as f64
    };
    let incremental_modeled_ps: u64 = responses.iter().map(|r| r.latency.sim_exec_ps).sum();

    let incremental_wall_secs = incremental_wall.as_secs_f64();
    let full_wall_secs = full_wall.as_secs_f64();
    Ok(UpdateRow {
        n,
        clients,
        requests: clients * requests_per_client,
        incremental_wall_secs,
        full_wall_secs,
        speedup: if incremental_wall_secs > 0.0 {
            full_wall_secs / incremental_wall_secs
        } else {
            f64::NAN
        },
        incremental_modeled_ms: incremental_modeled_ps as f64 / 1e9,
        full_modeled_ms: full_modeled_ps as f64 / 1e9,
        warm_start_hits: metrics.warm_start_hits,
        lowrank_hits: metrics.lowrank_hits,
        staleness_fallbacks: metrics.staleness_fallbacks,
        cold_starts,
        mean_warm_sweeps,
        max_sv_rel_error,
        golden_checked,
        fallback_bit_identical,
        cache_resident_bytes: cache.resident_bytes,
        cache_hit_rate_window: cache.hit_rate_window,
    })
}

/// Measures the update-heavy trace at each size in `sizes`.
///
/// # Errors
///
/// Service, accelerator, or golden-model errors from either variant.
pub fn run(
    sizes: &[usize],
    clients: usize,
    requests_per_client: usize,
) -> Result<UpdateReport, HeteroSvdError> {
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in sizes {
        rows.push(
            run_size(n, clients, requests_per_client).map_err(HeteroSvdError::InvalidConfig)?,
        );
    }
    Ok(UpdateReport {
        clients,
        requests_per_client,
        update_cache_rank: CACHE_RANK,
        max_update_rank: MAX_UPDATE_RANK,
        rows,
    })
}

/// The incremental-serving acceptance gates: ≥5× end-to-end speedup vs
/// full recompute at `n ≥ min_gate_n`, sv error ≤ 1e-5 vs the `f64`
/// golden on every row, the staleness-fallback path bit-identical to
/// `incremental = off`, and every route class actually exercised (one
/// cold start, warm start, and fallback per client; low-rank hits for
/// the bulk of the stream).
///
/// Pass `min_gate_n = usize::MAX` to skip the scale gate (CI smoke runs
/// sizes the wall-clock floor is not calibrated for).
pub fn gate_violations(report: &UpdateReport, min_gate_n: usize) -> Vec<String> {
    let mut violations = Vec::new();
    let clients = report.clients as u64;
    for row in &report.rows {
        if !row.fallback_bit_identical {
            violations.push(format!(
                "n={}: full-recompute routes are not bit-identical to incremental=off",
                row.n
            ));
        }
        // NaN must fail the gate, so the comparison is written positively.
        if row.max_sv_rel_error.is_nan() || row.max_sv_rel_error > SV_ERROR_GATE {
            violations.push(format!(
                "n={}: sv error {:.2e} vs f64 golden above the {SV_ERROR_GATE:.0e} gate",
                row.n, row.max_sv_rel_error
            ));
        }
        if row.golden_checked == 0 {
            violations.push(format!(
                "n={}: no request was checked against a golden",
                row.n
            ));
        }
        if row.cold_starts != clients {
            violations.push(format!(
                "n={}: {} cold starts for {} clients",
                row.n, row.cold_starts, clients
            ));
        }
        if row.warm_start_hits < clients {
            violations.push(format!(
                "n={}: only {} warm-start hits (expected one per client)",
                row.n, row.warm_start_hits
            ));
        }
        if row.staleness_fallbacks < clients {
            violations.push(format!(
                "n={}: only {} staleness fallbacks (expected one per client)",
                row.n, row.staleness_fallbacks
            ));
        }
        let expected_lowrank = (row.requests as u64).saturating_sub(3 * clients);
        if row.lowrank_hits < expected_lowrank {
            violations.push(format!(
                "n={}: only {} low-rank hits (trace schedules {})",
                row.n, row.lowrank_hits, expected_lowrank
            ));
        }
        // As above: a NaN speedup must count as a violation.
        if row.n >= min_gate_n && (row.speedup.is_nan() || row.speedup < SPEEDUP_GATE) {
            violations.push(format!(
                "n={}: incremental speedup {:.2}x below the {SPEEDUP_GATE:.0}x gate",
                row.n, row.speedup
            ));
        }
    }
    if min_gate_n != usize::MAX && !report.rows.iter().any(|r| r.n >= min_gate_n) {
        violations.push(format!("no n>={min_gate_n} row to gate"));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small run exercises every route class and is internally
    /// consistent: the exactness gates (bit-identity, sv accuracy,
    /// route coverage) hold even at a size the scale gate skips.
    #[test]
    fn small_trace_report_is_consistent() {
        let report = run(&[64], 2, 10).unwrap();
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.requests, 20);
        assert_eq!(row.cold_starts, 2, "one cold start per client");
        assert_eq!(row.warm_start_hits, 2, "one drift per client");
        assert_eq!(row.staleness_fallbacks, 2, "one shock per client");
        assert_eq!(
            row.cold_starts + row.warm_start_hits + row.staleness_fallbacks + row.lowrank_hits,
            row.requests as u64,
            "every request routed"
        );
        assert!(row.fallback_bit_identical);
        assert!(
            row.max_sv_rel_error <= SV_ERROR_GATE,
            "sv error {:.2e}",
            row.max_sv_rel_error
        );
        assert_eq!(
            row.golden_checked, row.requests,
            "n<=128 checks every request"
        );
        assert!(row.cache_resident_bytes > 0);
        // 18 classification hits / 2 cold-start misses over the window.
        assert!(
            row.cache_hit_rate_window >= 0.89,
            "trace is cache-hot after warmup"
        );
        assert!(
            row.incremental_modeled_ms < row.full_modeled_ms,
            "low-rank routes must shed modeled accelerator time"
        );
        let violations = gate_violations(&report, usize::MAX);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
