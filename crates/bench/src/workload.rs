//! Workload generation for the benchmark harness.
//!
//! The paper evaluates on dense single-precision matrices of sizes 128²
//! to 1024² (the sizes typical of MIMO channel estimation and
//! recommender-system blocks its introduction motivates). We generate
//! seeded random matrices so every run is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svd_kernels::block::{block_jacobi, BlockJacobiOptions};
use svd_kernels::Matrix;

/// A seeded dense random matrix with entries in `[-1, 1)` and a boosted
/// diagonal (well-conditioned, like the paper's converging workloads).
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |r, c| {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if r == c {
            v + 2.0
        } else {
            v
        }
    })
}

/// A batch of seeded matrices (seeds `base_seed..base_seed + count`).
pub fn random_batch(n: usize, count: usize, base_seed: u64) -> Vec<Matrix<f64>> {
    (0..count)
        .map(|i| random_matrix(n, n, base_seed + i as u64))
        .collect()
}

/// Number of block-Jacobi iterations needed to converge a random `n × n`
/// matrix at the paper's 1e-6 precision (§V-B), measured on the `f64`
/// reference solver with `P_eng`-column blocks.
///
/// For `n > 512` the reference run becomes expensive; the count is
/// extrapolated from the measured 512² value (+1 iteration per doubling,
/// matching the observed log-like growth).
pub fn iterations_to_converge(n: usize, p_eng: usize, seed: u64) -> usize {
    let measure = |size: usize| -> usize {
        let a = random_matrix(size, size, seed);
        let opts = BlockJacobiOptions {
            block_cols: p_eng.max(1),
            precision: 1e-6,
            max_iterations: 30,
            fixed_iterations: None,
            adaptive: false,
        };
        match block_jacobi(&a, &opts) {
            Ok(r) => r.sweeps,
            Err(_) => 30,
        }
    };
    if n <= 512 {
        measure(n)
    } else {
        let base = measure(512);
        let doublings = ((n as f64 / 512.0).log2()).ceil() as usize;
        base + doublings
    }
}

/// One phase of a bursty open-loop trace: `bursts` bursts of `burst`
/// same-shape requests. Inter-burst gaps are exponential (Poisson
/// burst arrivals) around `mean_gap_ms`, modulated by a half-sine
/// diurnal ramp that doubles the arrival rate mid-phase; a phase
/// change is the trace's mix shift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePhase {
    /// Request shape every burst of this phase carries.
    pub shape: (usize, usize),
    /// Requests per burst (1 = singles).
    pub burst: usize,
    /// Bursts in this phase.
    pub bursts: usize,
    /// Mean inter-burst gap in milliseconds at the ramp trough.
    pub mean_gap_ms: f64,
}

/// One request arrival of a bursty trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Arrival offset from trace start, milliseconds.
    pub at_ms: f64,
    /// Request shape.
    pub shape: (usize, usize),
    /// Seed of the request's matrix (distinct per event).
    pub seed: u64,
}

/// Generates a seeded multi-shape bursty open-loop trace: Poisson
/// burst arrivals, a diurnal half-sine ramp within each phase, and a
/// mix shift at every phase boundary. Deterministic for a given
/// `(phases, seed)`, so A/B runs (e.g. `--autoscale on|off`, or the
/// adaptive-vs-static services of `repro -- dse`) replay the identical
/// request stream.
pub fn bursty_trace(phases: &[TracePhase], seed: u64) -> Vec<TraceEvent> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::new();
    let mut t_ms = 0.0f64;
    let mut next_seed = seed;
    for phase in phases {
        for b in 0..phase.bursts {
            // Diurnal ramp: the arrival rate swells to 2x mid-phase
            // (gaps shrink by the same factor).
            let pos = (b as f64 + 0.5) / phase.bursts.max(1) as f64;
            let ramp = 1.0 + (std::f64::consts::PI * pos).sin();
            let u: f64 = rng.gen_range(1e-9..1.0);
            t_ms += -u.ln() * phase.mean_gap_ms / ramp;
            for _ in 0..phase.burst {
                next_seed += 1;
                events.push(TraceEvent {
                    at_ms: t_ms,
                    shape: phase.shape,
                    seed: next_seed,
                });
            }
        }
    }
    events
}

/// The canonical shifting-mix phase plan shared by `repro -- dse` and
/// `hsvd serve-bench --trace bursty`: large-matrix singles (favoring a
/// deep `P_eng` pipeline), then deep small-matrix bursts (favoring a
/// shallow `P_eng` with wide multi-problem packing), then singles
/// again — two step changes an adaptive service must chase.
pub fn shifting_mix_phases(quick: bool) -> Vec<TracePhase> {
    let (singles, bursts) = if quick { (6, 32) } else { (12, 64) };
    // Gaps are sized so a well-planned service keeps up with the
    // arrival rate (even at the diurnal peak): the controller observes
    // *completions*, so a saturated trace would hide a mix shift
    // behind the backlog and understate how fast the loop closes.
    let single_phase = TracePhase {
        shape: (128, 128),
        burst: 2,
        bursts: singles,
        mean_gap_ms: 40.0,
    };
    let burst_phase = TracePhase {
        shape: (32, 32),
        burst: 16,
        bursts,
        mean_gap_ms: 30.0,
    };
    vec![single_phase, burst_phase, single_phase]
}

/// The dominant-shape phase plan of the 95:5 multi-shape trace: deep
/// bursts of small matrices that pile a backlog onto the batcher.
pub fn multishape_dominant_phases(quick: bool) -> Vec<TracePhase> {
    vec![TracePhase {
        shape: (32, 32),
        burst: 16,
        bursts: if quick { 12 } else { 30 },
        mean_gap_ms: 10.0,
    }]
}

/// The rare-shape phase plan of the multi-shape trace: sparse larger
/// singles whose SLO a shape-blind FIFO starves behind the dominant
/// backlog.
pub fn multishape_rare_phases(quick: bool) -> Vec<TracePhase> {
    vec![TracePhase {
        shape: (64, 64),
        burst: 1,
        bursts: if quick { 8 } else { 16 },
        mean_gap_ms: if quick { 12.0 } else { 15.0 },
    }]
}

/// A seeded two-shape bursty trace at a ~95:5 dominant:rare mix, used
/// by `repro -- serve` and `hsvd serve-bench --trace multishape` to A/B
/// the shape-classed scheduler against shape-blind FIFO on an
/// *identical* request stream. Two independently-generated Poisson
/// streams (the rare stream re-seeded with a golden-ratio offset so
/// matrix seeds stay distinct) are merged by arrival time.
pub fn multishape_trace(quick: bool, seed: u64) -> Vec<TraceEvent> {
    let mut events = bursty_trace(&multishape_dominant_phases(quick), seed);
    events.extend(bursty_trace(
        &multishape_rare_phases(quick),
        seed ^ 0x9e37_79b9_7f4a_7c15,
    ));
    events.sort_by(|a, b| a.at_ms.total_cmp(&b.at_ms));
    events
}

/// The stationary counterpart: one phase of the same deep small-matrix
/// bursts, against which a correctly-hysteresized controller must
/// never swap.
pub fn stationary_phases(quick: bool) -> Vec<TracePhase> {
    vec![TracePhase {
        shape: (32, 32),
        burst: 16,
        bursts: if quick { 10 } else { 20 },
        mean_gap_ms: 30.0,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_are_deterministic() {
        let a = random_matrix(16, 16, 7);
        let b = random_matrix(16, 16, 7);
        let c = random_matrix(16, 16, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn batch_uses_distinct_seeds() {
        let batch = random_batch(8, 3, 100);
        assert_eq!(batch.len(), 3);
        assert_ne!(batch[0], batch[1]);
    }

    #[test]
    fn convergence_count_is_reasonable() {
        let iters = iterations_to_converge(32, 4, 42);
        assert!((3..=15).contains(&iters), "iters = {iters}");
    }

    #[test]
    fn bursty_trace_is_deterministic_and_ordered() {
        let phases = shifting_mix_phases(true);
        let a = bursty_trace(&phases, 42);
        let b = bursty_trace(&phases, 42);
        assert_eq!(a, b, "same seed must replay the identical trace");
        assert_ne!(a, bursty_trace(&phases, 43));
        let expected: usize = phases.iter().map(|p| p.burst * p.bursts).sum();
        assert_eq!(a.len(), expected);
        assert!(a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        // Every event seeds a distinct matrix.
        let seeds: std::collections::HashSet<u64> = a.iter().map(|e| e.seed).collect();
        assert_eq!(seeds.len(), a.len());
        // The mix actually shifts: both shapes appear.
        assert!(a.iter().any(|e| e.shape == (128, 128)));
        assert!(a.iter().any(|e| e.shape == (32, 32)));
    }

    #[test]
    fn multishape_trace_mixes_two_shapes_deterministically() {
        let a = multishape_trace(true, 42);
        let b = multishape_trace(true, 42);
        assert_eq!(a, b, "same seed must replay the identical trace");
        assert!(a.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        let dominant = a.iter().filter(|e| e.shape == (32, 32)).count();
        let rare = a.iter().filter(|e| e.shape == (64, 64)).count();
        assert_eq!(dominant + rare, a.len(), "only the two planned shapes");
        assert!(rare >= 4, "rare class must appear");
        assert!(
            dominant >= rare * 10,
            "dominant must dwarf rare ({dominant} vs {rare})"
        );
        // Matrix seeds stay distinct across the merged streams.
        let seeds: std::collections::HashSet<u64> = a.iter().map(|e| e.seed).collect();
        assert_eq!(seeds.len(), a.len());
    }

    #[test]
    fn extrapolation_beyond_512_adds_doublings() {
        // Cheap check of the arithmetic path (measure at 512 would be
        // slow in debug; use the structure on small n directly).
        let i512 = iterations_to_converge(64, 4, 1);
        assert!(i512 >= 3);
    }
}
