//! Workload generation for the benchmark harness.
//!
//! The paper evaluates on dense single-precision matrices of sizes 128²
//! to 1024² (the sizes typical of MIMO channel estimation and
//! recommender-system blocks its introduction motivates). We generate
//! seeded random matrices so every run is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svd_kernels::block::{block_jacobi, BlockJacobiOptions};
use svd_kernels::Matrix;

/// A seeded dense random matrix with entries in `[-1, 1)` and a boosted
/// diagonal (well-conditioned, like the paper's converging workloads).
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |r, c| {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if r == c {
            v + 2.0
        } else {
            v
        }
    })
}

/// A batch of seeded matrices (seeds `base_seed..base_seed + count`).
pub fn random_batch(n: usize, count: usize, base_seed: u64) -> Vec<Matrix<f64>> {
    (0..count)
        .map(|i| random_matrix(n, n, base_seed + i as u64))
        .collect()
}

/// Number of block-Jacobi iterations needed to converge a random `n × n`
/// matrix at the paper's 1e-6 precision (§V-B), measured on the `f64`
/// reference solver with `P_eng`-column blocks.
///
/// For `n > 512` the reference run becomes expensive; the count is
/// extrapolated from the measured 512² value (+1 iteration per doubling,
/// matching the observed log-like growth).
pub fn iterations_to_converge(n: usize, p_eng: usize, seed: u64) -> usize {
    let measure = |size: usize| -> usize {
        let a = random_matrix(size, size, seed);
        let opts = BlockJacobiOptions {
            block_cols: p_eng.max(1),
            precision: 1e-6,
            max_iterations: 30,
            fixed_iterations: None,
            adaptive: false,
        };
        match block_jacobi(&a, &opts) {
            Ok(r) => r.sweeps,
            Err(_) => 30,
        }
    };
    if n <= 512 {
        measure(n)
    } else {
        let base = measure(512);
        let doublings = ((n as f64 / 512.0).log2()).ceil() as usize;
        base + doublings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrices_are_deterministic() {
        let a = random_matrix(16, 16, 7);
        let b = random_matrix(16, 16, 7);
        let c = random_matrix(16, 16, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn batch_uses_distinct_seeds() {
        let batch = random_batch(8, 3, 100);
        assert_eq!(batch.len(), 3);
        assert_ne!(batch[0], batch[1]);
    }

    #[test]
    fn convergence_count_is_reasonable() {
        let iters = iterations_to_converge(32, 4, 42);
        assert!((3..=15).contains(&iters), "iters = {iters}");
    }

    #[test]
    fn extrapolation_beyond_512_adds_doublings() {
        // Cheap check of the arithmetic path (measure at 512 would be
        // slow in debug; use the structure on small n directly).
        let i512 = iterations_to_converge(64, 4, 1);
        assert!(i512 >= 3);
    }
}
