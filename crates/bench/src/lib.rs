#![warn(missing_docs)]

//! Benchmark harness for the HeteroSVD reproduction.
//!
//! Each module under [`experiments`] regenerates one table or figure of
//! the paper's evaluation (§V), returning structured rows that the
//! `repro` binary prints side by side with the published numbers. The
//! criterion benches under `benches/` measure the wall-clock cost of the
//! same code paths.
//!
//! | Paper artifact | Regenerator |
//! |---|---|
//! | Table II (vs FPGA \[6\]) | [`experiments::table2`] |
//! | Table III (vs GPU \[11\]) | [`experiments::table3`] |
//! | Table IV (model vs on-board, fixed clock) | [`experiments::table4`] |
//! | Table V (model vs on-board, DSE configs) | [`experiments::table5`] |
//! | Table VI (micro-architecture sweep) | [`experiments::table6`] |
//! | Fig. 3 (DMA counts) | [`experiments::fig3`] |
//! | Fig. 9 (throughput + utilization) | [`experiments::fig9`] |
//! | DSE flow (Eq. 15–16) | [`experiments::dse_report`] |
//! | Co-design ablation (extension) | [`experiments::ablation`] |
//! | Convergence study (extension) | [`experiments::convergence`] |
//! | QoR / accuracy study (extension) | [`experiments::accuracy`] |
//! | Incremental-update serving (extension) | [`experiments::update`] |

pub mod experiments;
pub mod workload;

/// Formats a ratio as a speedup string (e.g. `1.98x`).
pub fn speedup(ours: f64, theirs: f64) -> String {
    if ours == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.2}x", theirs / ours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_formats_ratio() {
        assert_eq!(speedup(1.0, 2.0), "2.00x");
        assert_eq!(speedup(0.0, 2.0), "inf");
    }
}
