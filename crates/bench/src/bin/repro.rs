//! `repro` — regenerates every table and figure of the HeteroSVD paper.
//!
//! ```text
//! cargo run --release -p heterosvd-bench --bin repro -- all
//! cargo run --release -p heterosvd-bench --bin repro -- table2 table4 fig3
//! cargo run --release -p heterosvd-bench --bin repro -- --quick all
//! ```
//!
//! `--quick` limits the sweeps to sizes ≤ 256 (the 512/1024 simulations
//! take minutes). `--out DIR` additionally writes each experiment's rows
//! as JSON for downstream plotting.

use heterosvd_bench::experiments::{
    ablation, accuracy, adaptive, apply, autoscale, convergence, devices, dse_report, fig3, fig9,
    hotpath, pack, scalability, serve, table2, table3, table4, table5, table6, update,
};
use heterosvd_bench::workload::{shifting_mix_phases, stationary_phases};
use std::sync::OnceLock;

/// Counting allocator so the `hotpath` experiment can report heap
/// allocations per pass (pure counting; delegates to the system
/// allocator).
#[global_allocator]
static ALLOC: hotpath::CountingAllocator = hotpath::CountingAllocator::new();

static OUT_DIR: OnceLock<Option<String>> = OnceLock::new();

fn set_out_dir(dir: Option<String>) {
    let _ = OUT_DIR.set(dir);
}

/// Persists an experiment's rows as JSON when `--out DIR` was given.
fn persist<T: serde::Serialize>(name: &str, rows: &T) {
    if let Some(Some(dir)) = OUT_DIR.get() {
        let path = format!("{dir}/{name}.json");
        match serde_json::to_string_pretty(rows) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("cannot write {path}: {e}");
                } else {
                    println!("[wrote {path}]");
                }
            }
            Err(e) => eprintln!("cannot serialize {name}: {e}"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            std::process::exit(1);
        }
    }
    set_out_dir(out_dir);
    let mut skip_next = false;
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--out" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    let all = selected.is_empty() || selected.contains(&"all");
    let want = |name: &str| all || selected.contains(&name);

    let sizes: &[usize] = if quick {
        &[128, 256]
    } else {
        &[128, 256, 512, 1024]
    };

    if want("table2") {
        run_table2(sizes);
    }
    if want("table3") {
        run_table3(sizes);
    }
    if want("table4") {
        run_table4(quick);
    }
    if want("table5") {
        run_table5(quick);
    }
    if want("table6") {
        run_table6();
    }
    if want("fig3") {
        run_fig3();
    }
    if want("fig5") {
        run_fig5();
    }
    if want("fig9") {
        run_fig9(sizes);
    }
    if want("dse") {
        run_dse_report();
        run_autoscale(quick);
    }
    if want("ablation") {
        run_ablation();
    }
    if want("pipeline") {
        run_pipeline();
    }
    if want("cpu") {
        run_cpu(quick);
    }
    if want("scalability") {
        run_scalability(quick);
    }
    if want("devices") {
        run_devices();
    }
    if want("convergence") {
        run_convergence(quick);
    }
    if want("accuracy") {
        run_accuracy(quick);
    }
    if want("hotpath") {
        run_hotpath(quick);
    }
    if want("adaptive") {
        run_adaptive(quick);
    }
    if want("serve") {
        run_serve(quick);
    }
    if want("apply") {
        run_apply(quick);
    }
    if want("pack") {
        run_pack(quick);
    }
    if want("update") {
        run_update(quick);
    }
}

fn run_update(quick: bool) {
    println!(
        "\n=== Incremental SVD: warm-start / low-rank update path vs full recompute \
         (P_eng={}, cache rank {}, update rank <= {}) ===",
        update::P_ENG,
        update::CACHE_RANK,
        update::MAX_UPDATE_RANK
    );
    // Quick sizes keep the f64 golden per-request check affordable (CI
    // smoke); the full run adds the gated n=512 point. 24 requests per
    // client keeps the trace update-heavy (one drift, one shock, one
    // resubmission — the rest rank-1 bumps), the regime the fast path
    // is built for.
    let (sizes, clients, per_client): (&[usize], usize, usize) = if quick {
        (&[64, 128], 2, 10)
    } else {
        (&[256, 512], 2, 24)
    };
    let report = match update::run(sizes, clients, per_client) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("update failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>6} {:>9} | {:>10} {:>10} {:>8} | {:>5} {:>5} {:>5} {:>5} | {:>9} {:>8} | {:>6}",
        "size",
        "requests",
        "incr(s)",
        "full(s)",
        "speedup",
        "cold",
        "warm",
        "lowrk",
        "fall",
        "sv-err",
        "golden",
        "bits"
    );
    for r in &report.rows {
        println!(
            "{:>6} {:>9} | {:>10.3} {:>10.3} {:>7.2}x | {:>5} {:>5} {:>5} {:>5} | {:>9.1e} {:>8} | {:>6}",
            r.n,
            r.requests,
            r.incremental_wall_secs,
            r.full_wall_secs,
            r.speedup,
            r.cold_starts,
            r.warm_start_hits,
            r.lowrank_hits,
            r.staleness_fallbacks,
            r.max_sv_rel_error,
            r.golden_checked,
            if r.fallback_bit_identical { "ok" } else { "FAIL" }
        );
        println!(
            "       modeled: {:.3} ms incremental vs {:.3} ms full | mean warm sweeps {:.1} | \
             cache {} bytes resident, window hit rate {:.1}%",
            r.incremental_modeled_ms,
            r.full_modeled_ms,
            r.mean_warm_sweeps,
            r.cache_resident_bytes,
            r.cache_hit_rate_window * 100.0
        );
    }
    persist("update", &report);

    // The emitter proper: BENCH_update.json at the repo root seeds the
    // perf trajectory regardless of `--out`.
    let path = std::env::var("BENCH_UPDATE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_update.json").to_string()
    });
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("[wrote {path}]");
        }
        Err(e) => {
            eprintln!("cannot serialize update report: {e}");
            std::process::exit(1);
        }
    }

    // Gates: quick (CI smoke) enforces the exactness criteria only; the
    // full run additionally enforces the 5x speedup floor at n=512.
    let violations = update::gate_violations(&report, if quick { usize::MAX } else { 512 });
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("update gate violated: {v}");
        }
        std::process::exit(1);
    }
}

fn run_pack(quick: bool) {
    println!(
        "\n=== Array packing: packed vs sequential serve throughput \
         (P_eng={}, {} iterations/request, modeled time) ===",
        pack::P_ENG,
        pack::ITERATIONS
    );
    let requests = if quick { 10 } else { 20 };
    let report = match pack::run(&[128, 256], requests) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("pack failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>6} {:>8} {:>9} | {:>12} {:>12} | {:>12} {:>12} {:>8} | {:>6} {:>6} {:>6}",
        "size",
        "tenants",
        "requests",
        "seq(ms)",
        "packed(ms)",
        "seq req/s",
        "pack req/s",
        "speedup",
        "waves",
        "bits",
        "replay"
    );
    for r in &report.rows {
        println!(
            "{:>6} {:>8} {:>9} | {:>12.3} {:>12.3} | {:>12.0} {:>12.0} {:>7.2}x | {:>6} {:>6} {:>6}",
            r.n,
            r.tenants,
            r.requests,
            r.sequential_modeled_ms,
            r.packed_modeled_ms,
            r.sequential_throughput,
            r.packed_throughput,
            r.speedup,
            r.packed_waves,
            if r.bit_identical { "ok" } else { "FAIL" },
            if r.replay_invariant { "ok" } else { "FAIL" }
        );
    }
    persist("pack", &report);

    // The emitter proper: BENCH_pack.json at the repo root seeds the
    // perf trajectory regardless of `--out`.
    let path = std::env::var("BENCH_PACK_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pack.json").to_string()
    });
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("[wrote {path}]");
        }
        Err(e) => {
            eprintln!("cannot serialize pack report: {e}");
            std::process::exit(1);
        }
    }

    // Gates: nonzero exit on any violated packing acceptance criterion
    // (speedup floors, bit-identity, replay invariance, packed waves).
    let violations = pack::gate_violations(&report);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("pack gate violated: {v}");
        }
        std::process::exit(1);
    }
}

fn run_apply(quick: bool) {
    println!(
        "\n=== Apply path: decompose-once / apply-constantly serving \
         (P_eng={}, P_task={}, {} iterations/decompose) ===",
        apply::P_ENG,
        apply::P_TASK,
        apply::ITERATIONS
    );
    let (sizes, applies, probes, mixed_requests): (&[usize], usize, usize, usize) = if quick {
        (&[64, 256], 256, 3, 105)
    } else {
        (&[64, 256, 512], 1024, 6, 420)
    };
    let report = match apply::run(sizes, &[4, 16, 32], applies, probes, mixed_requests, 20) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("apply failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>6} {:>6} | {:>10} {:>12} {:>12} {:>10} | {:>12} {:>12}",
        "size", "rank", "applies", "apply/s", "decomp/s", "speedup", "p50 wall(us)", "p99 wall(us)"
    );
    for r in &report.rows {
        println!(
            "{:>6} {:>6} | {:>10} {:>12.0} {:>12.2} {:>9.0}x | {:>12} {:>12}",
            r.n,
            r.rank,
            r.applies,
            r.applies_per_sec,
            r.decomposes_per_sec,
            r.speedup_vs_decompose,
            r.p50_wall_us,
            r.p99_wall_us
        );
    }
    let m = &report.mixed;
    println!(
        "mixed {}:1 at n={}: {} applies ok (p99 {} us wall), {} decomposes ok (p99 {} us wall), \
         store hit rate {:.1}%",
        m.apply_ratio,
        m.n,
        m.apply.completed_ok,
        m.apply_wall_us.p99,
        m.decompose.completed_ok,
        m.decompose_wall_us.p99,
        m.store_hit_rate * 100.0
    );
    println!(
        "exactness: max |served - direct| = {:e}, modeled timing replay-identical: {}",
        report.max_abs_delta, report.replay_identical
    );
    persist("apply", &report);

    // The emitter proper: BENCH_apply.json at the repo root seeds the
    // perf trajectory regardless of `--out`.
    let path = std::env::var("BENCH_APPLY_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_apply.json").to_string()
    });
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("[wrote {path}]");
        }
        Err(e) => {
            eprintln!("cannot serialize apply report: {e}");
            std::process::exit(1);
        }
    }

    // Gates: the binary exits nonzero on any violated serving
    // acceptance criterion (speedup floor, mix, hit rate, exactness).
    let violations = apply::gate_violations(&report);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("apply gate violated: {v}");
        }
        std::process::exit(1);
    }
}

fn run_adaptive(quick: bool) {
    println!(
        "\n=== Adaptive sweep engine: exact vs threshold-gated + dirty-pair memo \
         (fixed {} iterations, precision 1e-6, P_eng=4) ===",
        adaptive::FIXED_ITERATIONS
    );
    let sizes: &[usize] = if quick {
        &[64, 256]
    } else {
        &[64, 256, 512, 1024]
    };
    let report = match adaptive::run(sizes, 4, 1e-6) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("adaptive failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>6} {:>9} | {:>10} {:>10} {:>8} | {:>5} {:>5} | {:>11} {:>11} | {:>10} {:>10}",
        "size",
        "variant",
        "wall(s)",
        "rotations",
        "conv@",
        "sv-e",
        "orth",
        "memo skips",
        "gated",
        "speedup",
        "sv-delta"
    );
    for size in &report.sizes {
        for row in [&size.exact, &size.adaptive] {
            println!(
                "{:>6} {:>9} | {:>10.3} {:>10} {:>8} | {:>5.0e} {:>5.0e} | {:>11} {:>11} | {:>10} {:>10}",
                size.n,
                row.variant,
                row.wall_secs,
                row.rotations,
                row.converged_sweep
                    .map_or_else(|| "-".to_string(), |s| s.to_string()),
                row.sv_error_vs_golden,
                row.u_orth_error,
                row.memo_skips,
                row.gated_rotations,
                if row.variant == "adaptive" {
                    format!("{:.2}x", size.speedup)
                } else {
                    String::new()
                },
                if row.variant == "adaptive" {
                    format!("{:.1e}", size.sv_delta_adaptive_vs_exact)
                } else {
                    String::new()
                },
            );
        }
        if !size.timing_identical || !size.stats_identical {
            println!(
                "  n={}: WARNING modeled timing/stats differ between variants",
                size.n
            );
        }
    }
    persist("adaptive", &report);

    // The emitter proper: BENCH_adaptive.json at the repo root seeds the
    // perf trajectory regardless of `--out`.
    let path = std::env::var("BENCH_ADAPTIVE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json").to_string()
    });
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("[wrote {path}]");
        }
        Err(e) => {
            eprintln!("cannot serialize adaptive report: {e}");
            std::process::exit(1);
        }
    }

    // Gates: quick (CI smoke) requires no regression at n=256; the full
    // run additionally enforces the 1.8x speedup floor at n=512.
    let violations = adaptive::gate_violations(&report, if quick { usize::MAX } else { 512 });
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("adaptive gate violated: {v}");
        }
        std::process::exit(1);
    }
}

fn run_serve(quick: bool) {
    println!("\n=== Serving path: requests/sec, baseline vs optimized (256x256, P_eng=4, timing-only, 6 iterations) ===");
    let requests = if quick { 32 } else { 128 };
    let mut report = match serve::run(256, 4, 4, 8, 6, requests) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("serve failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>12} | {:>9} {:>10} {:>10} {:>12} | {:>12} {:>12}",
        "variant", "requests", "completed", "wall(s)", "req/s", "p50 wall(us)", "p99 wall(us)"
    );
    for r in &report.results {
        println!(
            "{:>12} | {:>9} {:>10} {:>10.3} {:>12.1} | {:>12} {:>12}",
            r.variant,
            r.requests,
            r.completed,
            r.wall_secs,
            r.requests_per_sec,
            r.p50_wall_us,
            r.p99_wall_us
        );
    }
    // Per-type windowed rates: the service tracks decompose and apply
    // classes separately, so packed-vs-sequential runs stay comparable
    // per class even under mixed traffic.
    for r in &report.results {
        if let (Some(w), Some(d), Some(a)) = (
            r.requests_per_sec_window,
            r.decompose_rps_window,
            r.apply_rps_window,
        ) {
            println!(
                "{:>12} | windowed req/s: {:.1} total, {:.1} decompose, {:.1} apply | packed: {} batches / {} requests",
                r.variant,
                w,
                d,
                a,
                r.packed_batches.unwrap_or(0),
                r.packed_requests.unwrap_or(0)
            );
        }
    }
    println!(
        "throughput speedup vs baseline: {:.2}x (batch {}, {} iterations/request)",
        report.speedup, report.max_batch, report.iterations
    );

    // Shape-classed scheduler A/B: the identical 95:5 two-shape bursty
    // trace through shape-blind FIFO and through the EDF shape-classed
    // scheduler, gated on the rare class's tail, the dominant class's
    // retained throughput, and factor bit-identity.
    println!("\n=== Multi-shape SLO scheduling: FIFO vs shape-classed (95:5 bursty trace) ===");
    let multishape = match serve::run_multishape(quick, 42) {
        Ok(ms) => ms,
        Err(e) => {
            eprintln!("multishape serve failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>10} | {:>9} {:>9} | {:>14} {:>14} | {:>12} | {:>6} {:>7}",
        "scheduler",
        "dominant",
        "rare",
        "dom p99(us)",
        "rare p99(us)",
        "dom req/s",
        "shed",
        "stolen"
    );
    for row in &multishape.rows {
        println!(
            "{:>10} | {:>9} {:>9} | {:>14} {:>14} | {:>12.1} | {:>6} {:>7}",
            row.scheduler,
            row.dominant_completed,
            row.rare_completed,
            row.dominant_p99_wall_us,
            row.rare_p99_wall_us,
            row.dominant_rps,
            row.shed,
            row.batches_stolen
        );
    }
    println!(
        "rare-class p99 improvement: {:.2}x | dominant throughput retained: {:.3} | factors bit-identical: {}",
        multishape.rare_p99_improvement,
        multishape.dominant_throughput_ratio,
        multishape.factors_bit_identical
    );
    let multishape_violations = multishape.gate_violations.clone();
    report.multishape = Some(multishape);
    persist("serve", &report);

    // The emitter proper: BENCH_serve.json at the repo root seeds the
    // perf trajectory regardless of `--out`.
    let path = std::env::var("BENCH_SERVE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
    });
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("[wrote {path}]");
        }
        Err(e) => {
            eprintln!("cannot serialize serve report: {e}");
            std::process::exit(1);
        }
    }

    // Self-gate: the classed scheduler must actually buy the rare class
    // its tail without giving up the dominant class's throughput, and
    // scheduling must never touch the math.
    if !multishape_violations.is_empty() {
        for v in &multishape_violations {
            eprintln!("multishape gate violated: {v}");
        }
        std::process::exit(1);
    }
}

fn run_hotpath(quick: bool) {
    println!(
        "\n=== Hot path: orthogonalization sweep, baseline vs optimized (256x256, P_eng=4) ==="
    );
    let sweeps = if quick { 2 } else { 5 };
    let report = match hotpath::run(256, 4, sweeps, &|| ALLOC.count()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("hotpath failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>20} | {:>12} {:>12} {:>12} {:>8} | {:>18}",
        "variant", "ns/pass", "sweeps/s", "allocs/pass", "workers", "checksum"
    );
    for r in &report.results {
        println!(
            "{:>20} | {:>12.0} {:>12.3} {:>12.2} {:>8} | {:>18.6}",
            r.variant,
            r.ns_per_pass,
            r.sweeps_per_sec,
            r.allocations_per_pass,
            r.workers,
            r.checksum
        );
    }
    println!(
        "speedup vs baseline: {:.2}x serial, {} parallel ({} passes/sweep, {} measured sweeps)",
        report.speedup_serial,
        report
            .speedup_parallel
            .map_or_else(|| report.parallel_status.clone(), |s| format!("{s:.2}x")),
        report.passes_per_sweep,
        report.measured_sweeps
    );
    if report.parallel_auto_degraded {
        println!(
            "optimized-parallel skipped (degraded): host reports {} hardware thread(s), a \
             one-worker pool is serial plus coordination overhead",
            report.host_parallelism
        );
    }
    persist("hotpath", &report);

    // The emitter proper: BENCH_hotpath.json at the repo root seeds the
    // perf trajectory regardless of `--out`.
    let path = std::env::var("BENCH_HOTPATH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json").to_string()
    });
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("[wrote {path}]");
        }
        Err(e) => {
            eprintln!("cannot serialize hotpath report: {e}");
            std::process::exit(1);
        }
    }
}

fn run_table2(sizes: &[usize]) {
    println!("\n=== Table II: latency & resources vs FPGA [6] (6 iterations) ===");
    println!(
        "{:>6} | {:>11} {:>11} {:>8} | {:>11} {:>8} | {:>6} {:>6} {:>8} {:>9}",
        "size",
        "FPGA(s)",
        "HSVD(s)",
        "speedup",
        "paper-HSVD",
        "paper-x",
        "URAM",
        "AIE",
        "LUT",
        "freq(MHz)"
    );
    match table2::run(sizes) {
        Ok(rows) => {
            persist("table2", &rows);
            for r in rows {
                let paper = table2::PAPER_ROWS.iter().find(|p| p.0 == r.n);
                let (paper_l, paper_s) = paper.map(|p| (p.2, p.3)).unwrap_or((f64::NAN, f64::NAN));
                println!(
                    "{:>6} | {:>11.4} {:>11.4} {:>7.2}x | {:>11.4} {:>7.2}x | {:>6} {:>6} {:>8} {:>9.1}",
                    r.n,
                    r.fpga_latency,
                    r.hsvd_latency,
                    r.speedup,
                    paper_l,
                    paper_s,
                    r.uram,
                    r.aie,
                    r.luts,
                    r.freq_mhz
                );
            }
        }
        Err(e) => eprintln!("table2 failed: {e}"),
    }
}

fn run_table3(sizes: &[usize]) {
    println!("\n=== Table III: latency/throughput/energy-efficiency vs GPU [11] (batch 100, converge 1e-6) ===");
    println!(
        "{:>6} {:>5} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8} | {:>8} {:>8} {:>8} | {:>9}",
        "size",
        "iter",
        "GPU lat",
        "GPU tput",
        "GPU EE",
        "HSVD lat",
        "HSVD tput",
        "HSVD EE",
        "lat-x",
        "tput-x",
        "EE-x",
        "(Pe,Pt)"
    );
    match table3::run(sizes) {
        Ok(rows) => {
            persist("table3", &rows);
            for r in rows {
                println!(
                    "{:>6} {:>5} | {:>10.4} {:>10.2} {:>8.3} | {:>10.4} {:>10.2} {:>8.3} | {:>7.2}x {:>7.2}x {:>7.2}x | ({},{})",
                    r.n,
                    r.iterations,
                    r.gpu_latency,
                    r.gpu_throughput,
                    r.gpu_ee,
                    r.hsvd_latency,
                    r.hsvd_throughput,
                    r.hsvd_ee,
                    r.gpu_latency / r.hsvd_latency,
                    r.hsvd_throughput / r.gpu_throughput,
                    r.hsvd_ee / r.gpu_ee,
                    r.tp_config.0,
                    r.tp_config.1
                );
            }
            println!("paper:  lat 7.22x/3.30x/1.15x/0.86x  tput 1.77x/1.10x/0.89x/0.36x  EE 13.18x/7.76x/6.50x/4.36x");
        }
        Err(e) => eprintln!("table3 failed: {e}"),
    }
}

fn run_table4(quick: bool) {
    println!("\n=== Table IV: performance model vs simulator (1 iteration, 208.3 MHz) ===");
    println!(
        "{:>6} {:>6} | {:>10} {:>10} {:>7} | {:>10} {:>10} {:>7}",
        "size", "P_eng", "sim(ms)", "model(ms)", "err", "paper-brd", "paper-mod", "p-err"
    );
    let configs: Vec<(usize, usize)> = if quick {
        table4::paper_configs()
            .into_iter()
            .filter(|&(n, _)| n <= 256)
            .collect()
    } else {
        table4::paper_configs()
    };
    match table4::run(&configs) {
        Ok(rows) => {
            persist("table4", &rows);
            let mut max_err = 0.0_f64;
            let mut sum_err = 0.0_f64;
            for r in &rows {
                let paper = table4::PAPER_ROWS
                    .iter()
                    .find(|p| p.0 == r.n && p.1 == r.p_eng)
                    .unwrap();
                println!(
                    "{:>6} {:>6} | {:>10.3} {:>10.3} {:>6.2}% | {:>10.3} {:>10.3} {:>6.2}%",
                    r.n,
                    r.p_eng,
                    r.measured_ms,
                    r.model_ms,
                    r.error * 100.0,
                    paper.2,
                    paper.3,
                    (paper.3 - paper.2).abs() / paper.2 * 100.0
                );
                max_err = max_err.max(r.error);
                sum_err += r.error;
            }
            println!(
                "model-vs-sim error: max {:.2}%, avg {:.2}% (paper: max 3.03%, avg 1.78%)",
                max_err * 100.0,
                sum_err / rows.len() as f64 * 100.0
            );
        }
        Err(e) => eprintln!("table4 failed: {e}"),
    }
}

fn run_table5(quick: bool) {
    println!("\n=== Table V: model vs simulator across DSE-chosen scenarios (1 iteration) ===");
    println!(
        "{:>6} {:>6} | {:>9} {:>6} {:>6} | {:>12} {:>12} {:>7}",
        "size", "batch", "freq", "P_eng", "P_task", "sim(ms)", "model(ms)", "err"
    );
    let scenarios: Vec<(usize, usize)> = if quick {
        table5::paper_scenarios()
            .into_iter()
            .filter(|&(n, _)| n <= 256)
            .collect()
    } else {
        table5::paper_scenarios()
    };
    match table5::run(&scenarios) {
        Ok(rows) => {
            persist("table5", &rows);
            let mut max_err = 0.0_f64;
            let mut sum_err = 0.0_f64;
            for r in &rows {
                println!(
                    "{:>6} {:>6} | {:>9.1} {:>6} {:>6} | {:>12.3} {:>12.3} {:>6.2}%",
                    r.n,
                    r.batch,
                    r.freq_mhz,
                    r.p_eng,
                    r.p_task,
                    r.measured_ms,
                    r.model_ms,
                    r.error * 100.0
                );
                max_err = max_err.max(r.error);
                sum_err += r.error;
            }
            println!(
                "model-vs-sim error: max {:.2}%, avg {:.2}% (paper: max 7.52%, avg 4.33%)",
                max_err * 100.0,
                sum_err / rows.len() as f64 * 100.0
            );
        }
        Err(e) => eprintln!("table5 failed: {e}"),
    }
}

fn run_table6() {
    println!("\n=== Table VI: micro-architecture sweep at 256x256, 208.3 MHz, 6 iterations ===");
    println!(
        "{:>6} {:>6} | {:>6} {:>6} | {:>12} {:>12} {:>8} | paper: latency/tput/power",
        "P_eng", "P_task", "AIE", "URAM", "latency(ms)", "tput(t/s)", "power(W)"
    );
    match table6::run(256, &[2, 4, 6, 8]) {
        Ok(rows) => {
            persist("table6", &rows);
            for r in &rows {
                let paper = table6::PAPER_ROWS.iter().find(|p| p.0 == r.p_eng).unwrap();
                println!(
                    "{:>6} {:>6} | {:>6} {:>6} | {:>12.3} {:>12.2} {:>8.2} | {:.3}/{:.1}/{:.2}",
                    r.p_eng,
                    r.p_task,
                    r.aie,
                    r.uram,
                    r.latency_ms,
                    r.throughput,
                    r.power_watts,
                    paper.4,
                    paper.5,
                    paper.6
                );
            }
        }
        Err(e) => eprintln!("table6 failed: {e}"),
    }
}

fn run_fig3() {
    println!("\n=== Fig. 3: DMA transfers per block-pair pass (ring vs shifting ring) ===");
    println!(
        "{:>4} | {:>11} {:>15} {:>15} {:>14} {:>10} | {:>9}",
        "k",
        "ring+naive",
        "ring+relocated",
        "shifting+naive",
        "round-robin",
        "co-design",
        "reduction"
    );
    let fig3_rows = fig3::run(11);
    persist("fig3", &fig3_rows);
    for r in fig3_rows {
        println!(
            "{:>4} | {:>11} {:>15} {:>15} {:>14} {:>10} | {:>8.1}x",
            r.k,
            r.ring_naive,
            r.ring_relocated,
            r.shifting_naive,
            r.round_robin_relocated,
            r.codesign,
            r.reduction
        );
    }
    println!(
        "paper formulas: ring+naive = 2k(k-1), co-design = 2(k-1); \
         round-robin [17] shown at its best (relocated): 2(k-1)^2"
    );
    println!("\nFig. 3 diagram regenerated for the paper's 6-column example (k = 3):\n");
    print!(
        "{}",
        svd_orderings::render::render_ordering(
            svd_orderings::movement::OrderingKind::Ring,
            svd_orderings::movement::DataflowKind::NaiveMemory,
            3,
            |l| l,
        )
    );
    println!();
    print!(
        "{}",
        svd_orderings::render::render_ordering(
            svd_orderings::movement::OrderingKind::ShiftingRing,
            svd_orderings::movement::DataflowKind::Relocated,
            3,
            |l| l,
        )
    );
}

fn run_fig5() {
    use heterosvd::{HeteroSvdConfig, Placement};
    println!("\n=== Fig. 5: AIE placement (regenerated from the placement engine) ===");
    for p_eng in [2usize, 8] {
        let cfg = HeteroSvdConfig::builder(64, 64)
            .engine_parallelism(p_eng)
            .build()
            .unwrap();
        let placement = Placement::plan(&cfg).unwrap();
        println!(
            "\nP_eng = {p_eng}: {} orth-layers in {} band(s), {} AIEs/task",
            placement.num_layers(),
            placement.num_bands(),
            placement.counts().total()
        );
        print!("{}", placement.render());
    }
}

fn run_fig9(sizes: &[usize]) {
    println!("\n=== Fig. 9: throughput & utilization vs design size (batch 100) ===");
    println!(
        "{:>6} | {:>10} {:>9} {:>9} | {:>10} {:>9} {:>9} | {:>6}",
        "size", "GPU tput", "GPU core", "GPU mem", "HSVD tput", "HSVD core", "HSVD bw", "P_task"
    );
    match fig9::run(sizes) {
        Ok(rows) => {
            persist("fig9", &rows);
            for r in rows {
                println!(
                    "{:>6} | {:>10.2} {:>8.1}% {:>8.1}% | {:>10.2} {:>8.1}% {:>8.1}% | {:>6}",
                    r.n,
                    r.gpu_throughput,
                    r.gpu_core_util * 100.0,
                    r.gpu_mem_util * 100.0,
                    r.hsvd_throughput,
                    r.hsvd_core_util * 100.0,
                    r.hsvd_mem_util * 100.0,
                    r.p_task
                );
            }
        }
        Err(e) => eprintln!("fig9 failed: {e}"),
    }
}

fn run_devices() {
    println!("\n=== Device porting study (extension): VCK190 vs estimated AIE-ML (batch 100, 6 iterations) ===");
    println!(
        "{:>34} {:>6} | {:>8} | {:>9} {:>12} | {:>9} {:>12}",
        "device", "size", "feasible", "lat cfg", "latency(ms)", "tput cfg", "tput(t/s)"
    );
    let rows = devices::run(&[128, 256], 6);
    persist("devices", &rows);
    for r in &rows {
        println!(
            "{:>34} {:>6} | {:>8} | ({:>2},{:>2}) {:>12.3} | ({:>2},{:>2}) {:>12.1}",
            r.device,
            r.n,
            r.feasible,
            r.latency_config.0,
            r.latency_config.1,
            r.latency_ms,
            r.throughput_config.0,
            r.throughput_config.1,
            r.throughput
        );
    }
    println!("(AIE-ML profile is estimated from public specs; a porting study, not a measurement)");
}

fn run_scalability(quick: bool) {
    println!(
        "\n=== Scalability what-if (extension): does more URAM flip the Table III crossover? ==="
    );
    println!(
        "{:>6} {:>6} {:>10} | {:>6} | {:>12} {:>12} {:>8}",
        "size", "URAMx", "freq", "P_task", "HSVD(t/s)", "GPU(t/s)", "ratio"
    );
    let sizes: &[(usize, usize)] = if quick {
        &[(256, 11), (512, 13)]
    } else {
        &[(256, 11), (512, 13), (1024, 14)]
    };
    let rows = scalability::run(sizes);
    persist("scalability", &rows);
    for r in &rows {
        println!(
            "{:>6} {:>6} {:>10} | {:>6} | {:>12.2} {:>12.2} {:>7.2}x",
            r.n,
            r.uram_scale,
            if r.optimistic_frequency {
                "450 fixed"
            } else {
                "derated"
            },
            r.p_task,
            r.hsvd_throughput,
            r.gpu_throughput,
            r.ratio
        );
    }
    println!("(paper S V-B: 'with adequate RAM resources and optimized operating frequency,\n HeteroSVD has the potential to outperform GPU solutions')");
}

fn run_cpu(quick: bool) {
    use baselines::CpuBaseline;
    use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
    use heterosvd_bench::workload::random_matrix;
    println!("\n=== CPU software baseline (extension): host block-Jacobi vs simulated accelerator (6 iterations) ===");
    println!(
        "{:>6} | {:>12} {:>12} | {:>8}",
        "size", "CPU(ms)", "HSVD(ms)", "speedup"
    );
    let sizes: &[usize] = if quick { &[128, 256] } else { &[128, 256, 512] };
    let cpu = CpuBaseline::new();
    for &n in sizes {
        let a = random_matrix(n, n, 4242);
        let m = cpu.measure(&a, 6, 2);
        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(8)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(6)
            .build()
            .unwrap();
        let hsvd_ms = Accelerator::new(cfg)
            .unwrap()
            .run(&svd_kernels::Matrix::zeros(n, n))
            .unwrap()
            .timing
            .task_time
            .as_millis();
        println!(
            "{:>6} | {:>12.3} {:>12.3} | {:>7.1}x",
            n,
            m.latency * 1e3,
            hsvd_ms,
            m.latency * 1e3 / hsvd_ms
        );
    }
    println!("(CPU numbers are host-machine wall clock; single-threaded f64 solver)");
}

fn run_pipeline() {
    use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
    println!("\n=== Pipeline trace: block-pair passes through the array (128x128, P_eng=8, 208.3 MHz) ===");
    let cfg = HeteroSvdConfig::builder(128, 128)
        .engine_parallelism(8)
        .pl_freq_mhz(208.3)
        .fidelity(FidelityMode::TimingOnly)
        .fixed_iterations(1)
        .record_trace(true)
        .build()
        .unwrap();
    match Accelerator::new(cfg).and_then(|a| a.run(&svd_kernels::Matrix::zeros(128, 128))) {
        Ok(out) => {
            // Show the round boundary: passes 4..20 cover rounds 1-2
            // (8 passes per round) including the dependency stall.
            print!("{}", heterosvd::render::render_gantt(&out.trace, 4, 16, 90));
            println!("(bars overlap while the pipeline streams; the gap at each 8-pass round\n boundary is the t_algo/t_datawait dependency stall of Eq. 10-11)");
        }
        Err(e) => eprintln!("pipeline trace failed: {e}"),
    }
}

fn run_convergence(quick: bool) {
    println!("\n=== Convergence study: iterations to precision (block size 8, 3 seeds) ===");
    println!(
        "{:>6} {:>10} | {:>10} {:>6} {:>14}",
        "size", "precision", "mean iter", "max", "final measure"
    );
    let sizes: &[usize] = if quick {
        &[32, 64, 128]
    } else {
        &[32, 64, 128, 256]
    };
    let conv_rows = convergence::run(sizes, &[1e-2, 1e-6, 1e-10], 8, 3);
    persist("convergence", &conv_rows);
    for r in conv_rows {
        println!(
            "{:>6} {:>10.0e} | {:>10.1} {:>6} {:>14.3e}",
            r.n, r.precision, r.mean_iterations, r.max_iterations, r.final_measure
        );
    }
}

fn run_accuracy(quick: bool) {
    println!("\n=== QoR study: f32 accelerator vs f64 golden (precision 1e-6) ===");
    println!(
        "{:>6} {:>6} {:>6} | {:>12} {:>14} {:>16}",
        "size", "P_eng", "iter", "sv error", "orthogonality", "reconstruction"
    );
    let sizes: &[usize] = if quick {
        &[32, 64, 128]
    } else {
        &[32, 64, 128, 256]
    };
    match accuracy::run(sizes, 4) {
        Ok(rows) => {
            persist("accuracy", &rows);
            for r in rows {
                println!(
                    "{:>6} {:>6} {:>6} | {:>12.2e} {:>14.2e} {:>16.2e}",
                    r.n, r.p_eng, r.iterations, r.sv_error, r.orthogonality, r.reconstruction
                );
            }
        }
        Err(e) => eprintln!("accuracy failed: {e}"),
    }
}

fn run_ablation() {
    println!(
        "\n=== Ablation: the two halves of the co-design (1024x48 tall matrix, P_eng=3, 6 iterations) ==="
    );
    println!(
        "{:>34} | {:>12} {:>10} {:>10} {:>12}",
        "variant", "latency(ms)", "DMA", "neighbor", "DMA bytes"
    );
    match ablation::run(1024, 48, 3) {
        Ok(rows) => {
            persist("ablation", &rows);
            let base = rows[0].latency_ms;
            for r in &rows {
                println!(
                    "{:>34} | {:>12.3} {:>10} {:>10} {:>12} ({:.2}x)",
                    r.name,
                    r.latency_ms,
                    r.dma_transfers,
                    r.neighbor_accesses,
                    r.dma_bytes,
                    base / r.latency_ms
                );
            }
        }
        Err(e) => eprintln!("ablation failed: {e}"),
    }
}

fn run_autoscale(quick: bool) {
    println!(
        "\n=== Closed-loop online DSE: adaptive vs static plans on a \
         shifting bursty trace ({} iterations/request, modeled time) ===",
        autoscale::ITERATIONS
    );
    let report = match autoscale::run(&shifting_mix_phases(quick), &stationary_phases(quick), 7) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("autoscale bench failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{:>10} {:>6} {:>7} {:>9} | {:>12} {:>12} | {:>6} {:>9}",
        "variant", "P_eng", "P_task", "requests", "modeled(ms)", "req/s", "swaps", "dse runs"
    );
    for row in std::iter::once(&report.adaptive).chain(&report.statics) {
        println!(
            "{:>10} {:>6} {:>7} {:>9} | {:>12.3} {:>12.0} | {:>6} {:>9}",
            row.label,
            row.engine_parallelism,
            row.task_parallelism,
            row.requests,
            row.modeled_ms,
            row.throughput_rps,
            row.plan_swaps,
            row.dse_runs
        );
    }
    println!(
        "adaptive speedup {:.2}x vs best static | {} distinct plans | factors bit-identical: {} | \
         stationary: {} swaps over {} dse runs at (P_eng={}, P_task={})",
        report.speedup_vs_best_static,
        report.distinct_plans,
        if report.bit_identical { "yes" } else { "NO" },
        report.stationary.plan_swaps,
        report.stationary.dse_runs,
        report.stationary.engine_parallelism,
        report.stationary.task_parallelism
    );
    persist("autoscale", &report);

    // The emitter proper: BENCH_dse.json at the repo root seeds the
    // perf trajectory regardless of `--out`.
    let path = std::env::var("BENCH_DSE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dse.json").to_string()
    });
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("[wrote {path}]");
        }
        Err(e) => {
            eprintln!("cannot serialize autoscale report: {e}");
            std::process::exit(1);
        }
    }

    // Gates: nonzero exit on any violated closed-loop criterion. The
    // full trace enforces the 1.3x headline; the quick CI smoke keeps
    // every exactness/swap gate but relaxes the speedup floor to the
    // shorter trace's reliable margin.
    let violations = autoscale::gate_violations(&report, if quick { 1.15 } else { 1.3 });
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("dse gate violated: {v}");
        }
        std::process::exit(1);
    }
}

fn run_dse_report() {
    println!("\n=== DSE flow (Eq. 15-16): full sweep at 256x256, batch 100, 6 iterations ===");
    let report = dse_report::run(256, 100, 6);
    persist("dse", &report);
    println!(
        "feasible points: {} / {} candidates, sweep took {:.1} ms",
        report.feasible,
        report.feasible + report.infeasible,
        report.sweep_ms
    );
    for (label, best) in [
        ("min-latency", &report.best_latency),
        ("max-throughput", &report.best_throughput),
        ("max-energy-eff", &report.best_ee),
    ] {
        if let Some(b) = best {
            println!(
                "{label:>15}: P_eng={} P_task={} freq={:.1}MHz latency={:.3}ms tput={:.1}t/s {:.2}W EE={:.3}",
                b.point.engine_parallelism,
                b.point.task_parallelism,
                b.point.pl_freq_mhz,
                b.latency.as_millis(),
                b.throughput,
                b.power_watts,
                b.energy_efficiency
            );
        }
    }
}
