//! Micro-benchmarks of the core numerical kernels: the orthogonalization
//! of a column pair (the orth-AIE's unit of work, Eq. 3–5) and the
//! supporting primitives, across the paper's column lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use svd_kernels::rotation::{
    column_products, column_products_scalar, compute_rotation, orthogonalize_pair,
    orthogonalize_pair_gated, orthogonalize_pair_gated_scalar,
};

fn bench_orthogonalize_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("orthogonalize_pair");
    for m in [128usize, 256, 512, 1024] {
        let x: Vec<f32> = (0..m).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..m).map(|i| (i as f32 * 0.73).cos()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let mut xs = x.clone();
                let mut ys = y.clone();
                black_box(orthogonalize_pair(&mut xs, &mut ys))
            })
        });
    }
    group.finish();
}

fn bench_rotation_factors(c: &mut Criterion) {
    c.bench_function("compute_rotation", |b| {
        b.iter(|| {
            black_box(compute_rotation(
                black_box(3.7),
                black_box(5.1),
                black_box(1.3),
            ))
        })
    });
}

fn bench_column_products(c: &mut Criterion) {
    let mut group = c.benchmark_group("column_products");
    for m in [128usize, 1024] {
        let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..m).map(|i| (i as f64 * 0.73).cos()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| black_box(column_products(&x, &y)))
        });
    }
    group.finish();
}

fn bench_column_products_f32_chunked_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("column_products_f32");
    for m in [256usize, 1024] {
        let x: Vec<f32> = (0..m).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..m).map(|i| (i as f32 * 0.73).cos()).collect();
        group.bench_with_input(BenchmarkId::new("chunked", m), &m, |b, _| {
            b.iter(|| black_box(column_products(&x, &y)))
        });
        group.bench_with_input(BenchmarkId::new("scalar", m), &m, |b, _| {
            b.iter(|| black_box(column_products_scalar(&x, &y)))
        });
    }
    group.finish();
}

fn bench_orthogonalize_f32_chunked_vs_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("orthogonalize_pair_f32");
    let m = 256usize;
    let x: Vec<f32> = (0..m).map(|i| (i as f32 * 0.37).sin()).collect();
    let y: Vec<f32> = (0..m).map(|i| (i as f32 * 0.73).cos()).collect();
    group.bench_function("chunked", |b| {
        b.iter(|| {
            let mut xs = x.clone();
            let mut ys = y.clone();
            black_box(orthogonalize_pair_gated(&mut xs, &mut ys, 0.0))
        })
    });
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut xs = x.clone();
            let mut ys = y.clone();
            black_box(orthogonalize_pair_gated_scalar(&mut xs, &mut ys, 0.0))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_orthogonalize_pair,
    bench_rotation_factors,
    bench_column_products,
    bench_column_products_f32_chunked_vs_scalar,
    bench_orthogonalize_f32_chunked_vs_scalar
);
criterion_main!(benches);
