//! Hot-path sweep benchmark: one full orthogonalization sweep of a
//! 128×128 functional workload per iteration, for the frozen baseline
//! and the optimized serial/parallel pipelines (the `repro -- hotpath`
//! emitter measures the 256×256 acceptance workload; this target keeps
//! `cargo bench --bench hotpath` fast enough for CI smoke runs).

use criterion::{criterion_group, criterion_main, Criterion};
use heterosvd_bench::experiments::hotpath;
use std::hint::black_box;

const N: usize = 128;
const P_ENG: usize = 4;

fn bench_sweep_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_sweep_128");
    group.bench_function("baseline", |b| {
        b.iter(|| black_box(hotpath::sweep_baseline(N, P_ENG, 1).expect("baseline sweep")))
    });
    group.bench_function("optimized-serial", |b| {
        b.iter(|| black_box(hotpath::sweep_optimized(N, P_ENG, 1, 1).expect("serial sweep")))
    });
    group.bench_function("optimized-parallel", |b| {
        b.iter(|| {
            black_box(
                hotpath::sweep_optimized(N, P_ENG, svd_kernels::parallel::available_workers(), 1)
                    .expect("parallel sweep"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_variants);
criterion_main!(benches);
