//! Benchmarks of the software reference solvers: the golden
//! Hestenes–Jacobi SVD and the block-Jacobi driver (Algorithm 1's
//! software analog).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heterosvd_bench::workload::random_matrix;
use std::hint::black_box;
use svd_kernels::block::{block_jacobi, BlockJacobiOptions};
use svd_kernels::{hestenes_jacobi, JacobiOptions};

fn bench_hestenes_jacobi(c: &mut Criterion) {
    let mut group = c.benchmark_group("hestenes_jacobi");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let a = random_matrix(n, n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(hestenes_jacobi(&a, &JacobiOptions::paper()).unwrap()))
        });
    }
    group.finish();
}

fn bench_block_jacobi(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_jacobi");
    group.sample_size(10);
    for n in [64usize, 128] {
        let a = random_matrix(n, n, 42);
        let opts = BlockJacobiOptions {
            block_cols: 8,
            precision: 1e-6,
            max_iterations: 30,
            fixed_iterations: None,
            adaptive: false,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(block_jacobi(&a, &opts).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hestenes_jacobi, bench_block_jacobi);
criterion_main!(benches);
