//! Table IV bench: the analytic performance model (Eq. 8–14) against the
//! cycle-approximate simulator — measuring the evaluation-speed gap that
//! justifies the model's existence in the DSE flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use perf_model::{estimate, DesignPoint};
use std::hint::black_box;
use svd_kernels::Matrix;

fn bench_model_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4/model");
    for (n, p_eng) in [(128usize, 2usize), (512, 8)] {
        let point = DesignPoint {
            rows: n,
            cols: n,
            engine_parallelism: p_eng,
            task_parallelism: 1,
            pl_freq_mhz: 208.3,
            iterations: 1,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}-Pe{p_eng}")),
            &point,
            |b, p| b.iter(|| black_box(estimate(p))),
        );
    }
    group.finish();
}

fn bench_simulator_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4/simulator");
    group.sample_size(10);
    for (n, p_eng) in [(128usize, 2usize), (128, 8)] {
        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(p_eng)
            .pl_freq_mhz(208.3)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(1)
            .build()
            .unwrap();
        let acc = Accelerator::new(cfg).unwrap();
        let a = Matrix::zeros(n, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}-Pe{p_eng}")),
            &n,
            |b, _| b.iter(|| black_box(acc.run(&a).unwrap().timing.avg_iteration())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_model_evaluation, bench_simulator_evaluation);
criterion_main!(benches);
