//! Ablation bench: the two halves of the algorithm-hardware co-design in
//! isolation (DESIGN.md §4.2). Each configuration runs the same workload
//! through the simulated accelerator; the latency ordering demonstrates
//! how much of the win comes from the ordering vs the dataflow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use std::hint::black_box;
use svd_kernels::Matrix;
use svd_orderings::movement::{DataflowKind, OrderingKind};

fn bench_codesign_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/codesign");
    group.sample_size(10);
    let variants = [
        ("ring+naive", OrderingKind::Ring, DataflowKind::NaiveMemory),
        (
            "ring+relocated",
            OrderingKind::Ring,
            DataflowKind::Relocated,
        ),
        (
            "shifting+naive",
            OrderingKind::ShiftingRing,
            DataflowKind::NaiveMemory,
        ),
        (
            "shifting+relocated",
            OrderingKind::ShiftingRing,
            DataflowKind::Relocated,
        ),
    ];
    // k = 3 keeps the layers in one band so the ablation isolates the
    // ordering/dataflow effect (n divisible by 2k = 6).
    let n = 120;
    for (name, ordering, dataflow) in variants {
        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(3)
            .ordering(ordering)
            .dataflow(dataflow)
            .pl_freq_mhz(208.3)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(2)
            .build()
            .unwrap();
        let acc = Accelerator::new(cfg).unwrap();
        let a = Matrix::zeros(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| black_box(acc.run(&a).unwrap().timing.task_time))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codesign_ablation);
criterion_main!(benches);
