//! DSE bench: the full two-stage design-space sweep (Eq. 15–16) —
//! the "minutes instead of seven hours per point" claim, measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heterosvd_dse::{run_dse, DseConfig, Objective};
use std::hint::black_box;

fn bench_full_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("dse/full_sweep");
    for n in [128usize, 256, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = DseConfig::new(n, n).batch(100).iterations(6);
            b.iter(|| black_box(run_dse(&cfg)))
        });
    }
    group.finish();
}

fn bench_objective_selection(c: &mut Criterion) {
    let result = run_dse(&DseConfig::new(256, 256).batch(100).iterations(6));
    c.bench_function("dse/best_selection", |b| {
        b.iter(|| {
            black_box(result.best(Objective::MinLatency));
            black_box(result.best(Objective::MaxThroughput));
            black_box(result.best(Objective::MaxEnergyEfficiency))
        })
    });
}

criterion_group!(benches, bench_full_sweep, bench_objective_selection);
criterion_main!(benches);
