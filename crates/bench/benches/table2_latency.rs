//! Table II bench: regenerates the FPGA-comparison latency rows (the
//! simulated HeteroSVD run at `P_eng = 8`, six iterations) and measures
//! how long the simulation itself takes per size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use heterosvd_bench::experiments::table2;
use std::hint::black_box;
use svd_kernels::Matrix;

fn bench_table2_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/simulate");
    group.sample_size(10);
    for n in [128usize, 256] {
        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(table2::P_ENG)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(table2::ITERATIONS)
            .build()
            .unwrap();
        let acc = Accelerator::new(cfg).unwrap();
        let a = Matrix::zeros(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(acc.run(&a).unwrap().timing.task_time))
        });
    }
    group.finish();
}

fn bench_table2_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/harness");
    group.sample_size(10);
    group.bench_function("sizes_128_256", |b| {
        b.iter(|| black_box(table2::run(&[128, 256]).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_table2_rows, bench_table2_full);
criterion_main!(benches);
