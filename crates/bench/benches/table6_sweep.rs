//! Table VI bench: the micro-architecture sweep at 256×256 — latency,
//! throughput and power across `P_eng` with maximized `P_task`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heterosvd_bench::experiments::table6;
use heterosvd_dse::{evaluate_point, DseConfig};
use std::hint::black_box;

fn bench_point_evaluation(c: &mut Criterion) {
    let cfg = DseConfig::new(256, 256).iterations(6).freq_mhz(208.3);
    let mut group = c.benchmark_group("table6/evaluate_point");
    for (p_eng, p_task) in [(2usize, 26usize), (8, 2)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("Pe{p_eng}-Pt{p_task}")),
            &(p_eng, p_task),
            |b, &(pe, pt)| b.iter(|| black_box(evaluate_point(&cfg, pe, pt).unwrap())),
        );
    }
    group.finish();
}

fn bench_table6_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6/simulated_row");
    group.sample_size(10);
    group.bench_function("Pe8", |b| {
        b.iter(|| black_box(table6::run(256, &[8]).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_point_evaluation, bench_table6_row);
criterion_main!(benches);
