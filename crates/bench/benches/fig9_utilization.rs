//! Fig. 9 bench: throughput/utilization extraction — the simulated
//! utilization statistics and the GPU baseline curves.

use baselines::GpuBaseline;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use std::hint::black_box;
use svd_kernels::Matrix;

fn bench_utilization_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9/hsvd_utilization");
    group.sample_size(10);
    for n in [128usize, 256] {
        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(4)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(6)
            .build()
            .unwrap();
        let acc = Accelerator::new(cfg).unwrap();
        let a = Matrix::zeros(n, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let out = acc.run(&a).unwrap();
                let counts = acc.placement().counts();
                black_box((
                    out.stats.core_utilization(counts.orth),
                    out.stats.bandwidth_utilization(6),
                ))
            })
        });
    }
    group.finish();
}

fn bench_gpu_curves(c: &mut Criterion) {
    let gpu = GpuBaseline::published();
    c.bench_function("fig9/gpu_curves", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in (7..=10).map(|e| 1usize << e) {
                acc += black_box(gpu.core_utilization(n));
                acc += black_box(gpu.memory_utilization(n));
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_utilization_extraction, bench_gpu_curves);
criterion_main!(benches);
