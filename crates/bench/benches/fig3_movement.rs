//! Fig. 3 bench: the data-movement/DMA analysis across orderings and
//! dataflows (the quantitative core of the co-design argument).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heterosvd_bench::experiments::fig3;
use std::hint::black_box;
use svd_orderings::movement::{analyze, DataflowKind, OrderingKind};
use svd_orderings::HardwareSchedule;

fn bench_movement_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/analyze");
    for k in [4usize, 8, 11] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                black_box(analyze(OrderingKind::Ring, DataflowKind::NaiveMemory, k));
                black_box(analyze(
                    OrderingKind::ShiftingRing,
                    DataflowKind::Relocated,
                    k,
                ))
            })
        });
    }
    group.finish();
}

fn bench_schedule_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/schedule");
    for k in [4usize, 11] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(HardwareSchedule::new(k, OrderingKind::ShiftingRing)))
        });
    }
    group.finish();
}

fn bench_full_figure(c: &mut Criterion) {
    c.bench_function("fig3/full", |b| b.iter(|| black_box(fig3::run(11))));
}

criterion_group!(
    benches,
    bench_movement_analysis,
    bench_schedule_construction,
    bench_full_figure
);
criterion_main!(benches);
