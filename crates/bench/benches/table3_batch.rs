//! Table III bench: batch processing against the GPU baseline — measures
//! the batched-system simulation (Eq. 14 composition) and the baseline
//! model evaluation.

use baselines::GpuBaseline;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use std::hint::black_box;
use svd_kernels::Matrix;

fn bench_batch_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3/batch_sim");
    group.sample_size(10);
    for (n, p_eng, p_task) in [(128usize, 2usize, 16usize), (256, 4, 9)] {
        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(p_eng)
            .task_parallelism(p_task)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(8)
            .build()
            .unwrap();
        let acc = Accelerator::new(cfg).unwrap();
        let a = Matrix::zeros(n, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}-Pt{p_task}")),
            &n,
            |b, _| b.iter(|| black_box(acc.run_batch(&a, 100).unwrap().1)),
        );
    }
    group.finish();
}

fn bench_gpu_baseline_model(c: &mut Criterion) {
    let gpu = GpuBaseline::published();
    c.bench_function("table3/gpu_model", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in [128usize, 256, 512, 1024] {
                acc += black_box(gpu.throughput(n, 100));
                acc += black_box(gpu.energy_efficiency(n, 100));
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_batch_simulation, bench_gpu_baseline_model);
criterion_main!(benches);
