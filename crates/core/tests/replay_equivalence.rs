//! Exact-equality sweep: timing replay vs. full re-simulation.
//!
//! The timing-replay cache (see `heterosvd::replay`) claims to be exact,
//! not approximate: for every design it activates on, the replayed run
//! must agree with a fully re-simulated run bit for bit — every `TimePs`
//! in the timing breakdown, every `SimStats` counter, every trace
//! record, and (in functional fidelity) every matrix element.

use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use svd_kernels::Matrix;
use svd_orderings::movement::OrderingKind;

fn sample(n: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |r, c| {
        ((r * 41 + c * 17 + 5) % 23) as f64 / 5.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
    })
}

fn accel(
    n: usize,
    p_eng: usize,
    ordering: OrderingKind,
    fidelity: FidelityMode,
    replay: bool,
) -> Accelerator {
    let cfg = HeteroSvdConfig::builder(n, n)
        .engine_parallelism(p_eng)
        .ordering(ordering)
        .pl_freq_mhz(208.3)
        .fixed_iterations(5)
        .fidelity(fidelity)
        .record_trace(true)
        .timing_replay(replay)
        .build()
        .unwrap();
    Accelerator::new(cfg).unwrap()
}

#[test]
fn replayed_runs_match_full_resimulation_bit_for_bit() {
    let shapes = [(16usize, 2usize), (24, 3), (32, 4), (48, 2)];
    let orderings = [
        OrderingKind::ShiftingRing,
        OrderingKind::Ring,
        OrderingKind::RoundRobin,
    ];
    for &(n, p_eng) in &shapes {
        for ordering in orderings {
            for fidelity in [FidelityMode::Functional, FidelityMode::TimingOnly] {
                let ctx = format!("n={n} p_eng={p_eng} {ordering:?} {fidelity:?}");
                let with_replay = accel(n, p_eng, ordering, fidelity, true);
                // The sweep must actually exercise replay, not fall back.
                assert!(
                    with_replay
                        .plan()
                        .timing_profile(with_replay.config())
                        .is_some(),
                    "no profile for {ctx} — sweep would be vacuous"
                );
                let a = sample(n);
                let replayed = with_replay.run(&a).unwrap();
                let resimulated = accel(n, p_eng, ordering, fidelity, false).run(&a).unwrap();

                // Bit-identical TimePs across the whole breakdown
                // (ddr_time, every iteration end, norm_time, task_time).
                assert_eq!(replayed.timing, resimulated.timing, "timing for {ctx}");
                // Identical counters (ddr_bytes, orth_invocations, DMA,
                // PLIO, busy times, iterations — full struct equality).
                assert_eq!(replayed.stats, resimulated.stats, "stats for {ctx}");
                // Identical per-pass trace records.
                assert_eq!(replayed.trace, resimulated.trace, "trace for {ctx}");
                // Identical math.
                assert_eq!(
                    replayed.result.u.as_slice(),
                    resimulated.result.u.as_slice(),
                    "factors for {ctx}"
                );
                assert_eq!(
                    replayed.result.sigma, resimulated.result.sigma,
                    "sigma for {ctx}"
                );
                assert_eq!(
                    replayed.result.history, resimulated.result.history,
                    "history for {ctx}"
                );
            }
        }
    }
}

#[test]
fn adaptive_sweeps_leave_timing_stats_and_trace_bit_identical() {
    // The convergence-adaptive engine only changes *host* functional
    // compute (which rotations are evaluated); the modeled hardware —
    // every `TimePs`, every `SimStats` counter, every trace record — runs
    // the full Eq. 8–14 schedule either way. Flip the knob under a fixed
    // iteration budget and demand bitwise identity, with replay both off
    // and on.
    for replay in [false, true] {
        for fidelity in [FidelityMode::Functional, FidelityMode::TimingOnly] {
            let build = |adaptive: bool| {
                let cfg = HeteroSvdConfig::builder(32, 32)
                    .engine_parallelism(4)
                    .pl_freq_mhz(208.3)
                    .fixed_iterations(5)
                    .fidelity(fidelity)
                    .record_trace(true)
                    .timing_replay(replay)
                    .adaptive_sweeps(adaptive)
                    .build()
                    .unwrap();
                Accelerator::new(cfg).unwrap()
            };
            let ctx = format!("replay={replay} {fidelity:?}");
            let a = sample(32);
            let on = build(true).run(&a).unwrap();
            let off = build(false).run(&a).unwrap();
            assert_eq!(on.timing, off.timing, "timing for {ctx}");
            assert_eq!(on.stats, off.stats, "stats for {ctx}");
            assert_eq!(on.trace, off.trace, "trace for {ctx}");
            // Counters follow the knob — but only where functional
            // compute exists at all; timing-only runs have no columns to
            // gate.
            let functional = fidelity == FidelityMode::Functional;
            assert_eq!(on.adaptive.is_some(), functional, "counters(on) for {ctx}");
            assert!(off.adaptive.is_none(), "counters(off) for {ctx}");
        }
    }
}

#[test]
fn observability_knob_leaves_modeled_behavior_bit_identical() {
    // Observability is measurement, not behavior: span records and the
    // utilization report are derived *from* the run and must never feed
    // back into it. Flip the knob and demand bitwise identity of every
    // modeled quantity, with replay both off and on.
    for replay in [false, true] {
        for fidelity in [FidelityMode::Functional, FidelityMode::TimingOnly] {
            let build = |observability: bool| {
                let cfg = HeteroSvdConfig::builder(32, 32)
                    .engine_parallelism(4)
                    .pl_freq_mhz(208.3)
                    .fixed_iterations(5)
                    .fidelity(fidelity)
                    .record_trace(true)
                    .timing_replay(replay)
                    .observability(observability)
                    .build()
                    .unwrap();
                Accelerator::new(cfg).unwrap()
            };
            let ctx = format!("replay={replay} {fidelity:?}");
            let a = sample(32);
            let on = build(true).run(&a).unwrap();
            let off = build(false).run(&a).unwrap();
            assert_eq!(on.timing, off.timing, "timing for {ctx}");
            assert_eq!(on.stats, off.stats, "stats for {ctx}");
            assert_eq!(on.trace, off.trace, "trace for {ctx}");
            if fidelity == FidelityMode::Functional {
                assert_eq!(
                    on.result.u.as_slice(),
                    off.result.u.as_slice(),
                    "factors for {ctx}"
                );
                assert_eq!(on.result.sigma, off.result.sigma, "sigma for {ctx}");
            }
            // Only the report's presence follows the knob.
            assert!(on.utilization.is_some(), "report missing for {ctx}");
            assert!(off.utilization.is_none(), "report leaked for {ctx}");
            // And the report itself is internally consistent: fractions
            // clamped, the critical resource is the argmax.
            let report = on.utilization.unwrap();
            let critical = report.resource(report.critical).busy_fraction;
            for r in &report.resources {
                assert!((0.0..=1.0).contains(&r.busy_fraction), "fraction for {ctx}");
                assert!(r.busy_fraction <= critical, "critical not argmax for {ctx}");
            }
        }
    }
}

#[test]
fn replay_is_exact_in_adaptive_convergence_mode() {
    // Without fixed iterations the system module decides when to stop
    // from the measured convergence — identical math must produce the
    // same iteration count and the same replayed clock.
    let build = |replay: bool| {
        let cfg = HeteroSvdConfig::builder(32, 32)
            .engine_parallelism(4)
            .pl_freq_mhz(208.3)
            .record_trace(true)
            .timing_replay(replay)
            .build()
            .unwrap();
        Accelerator::new(cfg).unwrap()
    };
    let a = sample(32);
    let replayed = build(true).run(&a).unwrap();
    let resimulated = build(false).run(&a).unwrap();
    assert_eq!(replayed.timing, resimulated.timing);
    assert_eq!(replayed.stats, resimulated.stats);
    assert_eq!(replayed.trace, resimulated.trace);
    assert_eq!(replayed.result.sweeps, resimulated.result.sweeps);
    assert_eq!(
        replayed.result.u.as_slice(),
        resimulated.result.u.as_slice()
    );
}
