//! The functional-parallelism knob must be invisible in the results:
//! for any shape and seed, a parallel-mode `run_f32` produces *exactly*
//! the output of a serial-mode run — sigma bit patterns, U entries,
//! iteration counts, and simulated statistics all identical.

use heterosvd::{Accelerator, HeteroSvdConfig, HeteroSvdOutput};
use rand::{Rng, SeedableRng};
use svd_kernels::Matrix;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |r, c| {
        rng.gen_range(-10.0f32..10.0) + if r == c { 12.0 } else { 0.0 }
    })
}

fn run(rows: usize, cols: usize, p_eng: usize, workers: usize, a: &Matrix<f32>) -> HeteroSvdOutput {
    let cfg = HeteroSvdConfig::builder(rows, cols)
        .engine_parallelism(p_eng)
        .functional_parallelism(workers)
        .pl_freq_mhz(208.3)
        .build()
        .unwrap();
    Accelerator::new(cfg).unwrap().run_f32(a).unwrap()
}

fn assert_outputs_identical(serial: &HeteroSvdOutput, parallel: &HeteroSvdOutput, label: &str) {
    let s_bits: Vec<u32> = serial.result.sigma.iter().map(|x| x.to_bits()).collect();
    let p_bits: Vec<u32> = parallel.result.sigma.iter().map(|x| x.to_bits()).collect();
    assert_eq!(s_bits, p_bits, "{label}: sigma must match bit for bit");
    let su: Vec<u32> = serial
        .result
        .u
        .as_slice()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    let pu: Vec<u32> = parallel
        .result
        .u
        .as_slice()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    assert_eq!(su, pu, "{label}: U must match bit for bit");
    assert_eq!(
        serial.result.sweeps, parallel.result.sweeps,
        "{label}: iteration count"
    );
    assert_eq!(
        serial.result.history, parallel.result.history,
        "{label}: convergence history"
    );
    assert_eq!(serial.stats, parallel.stats, "{label}: SimStats");
    assert_eq!(
        serial.timing.task_time, parallel.timing.task_time,
        "{label}: simulated latency"
    );
}

#[test]
fn parallel_run_is_bit_identical_across_shapes_and_seeds() {
    // (rows, cols, P_eng) covering square/tall shapes, one band and
    // multiple bands, with several seeds each.
    let shapes = [
        (16usize, 16usize, 2usize),
        (24, 12, 3),
        (40, 16, 4),
        (64, 64, 8),
    ];
    for &(rows, cols, p_eng) in &shapes {
        for seed in [1u64, 42, 9001] {
            let a = random_matrix(rows, cols, seed);
            let serial = run(rows, cols, p_eng, 1, &a);
            for workers in [2usize, 4, 16] {
                let parallel = run(rows, cols, p_eng, workers, &a);
                assert_outputs_identical(
                    &serial,
                    &parallel,
                    &format!("{rows}x{cols} p_eng={p_eng} seed={seed} workers={workers}"),
                );
            }
        }
    }
}

#[test]
fn parallel_run_matches_serial_through_f64_entry_point() {
    let a64 = random_matrix(32, 16, 7).cast::<f64>();
    let mk = |workers: usize| {
        let cfg = HeteroSvdConfig::builder(32, 16)
            .engine_parallelism(4)
            .functional_parallelism(workers)
            .pl_freq_mhz(208.3)
            .build()
            .unwrap();
        Accelerator::new(cfg).unwrap().run(&a64).unwrap()
    };
    assert_outputs_identical(&mk(1), &mk(8), "f64 entry point");
}
