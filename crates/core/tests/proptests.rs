//! Property-based tests of the accelerator's structural invariants.

use heterosvd::placement::Placement;
use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use proptest::prelude::*;
use svd_kernels::Matrix;

fn valid_config(p_eng: usize, blocks: usize, rows_extra: usize) -> HeteroSvdConfig {
    let cols = 2 * p_eng * blocks;
    HeteroSvdConfig::builder(cols + rows_extra, cols)
        .engine_parallelism(p_eng)
        .pl_freq_mhz(208.3)
        .fidelity(FidelityMode::TimingOnly)
        .fixed_iterations(1)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Placement counts follow the Table I formulas for every valid
    /// engine parallelism.
    #[test]
    fn placement_counts_follow_formulas(p_eng in 1usize..=11, blocks in 1usize..4) {
        let cfg = valid_config(p_eng, blocks, 0);
        let p = Placement::plan(&cfg).unwrap();
        let k = p_eng;
        let layers = 2 * k - 1;
        prop_assert_eq!(p.num_layers(), layers);
        prop_assert_eq!(p.counts().orth, k * layers);
        prop_assert_eq!(p.counts().norm, k);
        // mem = (bands-1)*k mem-layer tiles + one DMA tile per layer.
        let bands = layers.div_ceil(6);
        prop_assert_eq!(p.counts().mem, (bands - 1) * k + layers);
        // Every orth tile is on an interior row.
        for l in 0..layers {
            prop_assert!((1..=6).contains(&p.row_of_layer(l)));
            for t in p.orth_tiles(l) {
                prop_assert_eq!(t.row, p.row_of_layer(l));
            }
        }
    }

    /// The simulated clock is deterministic: the same configuration and
    /// shape always produce the same latency.
    #[test]
    fn timing_is_deterministic(p_eng in 1usize..5, blocks in 1usize..3) {
        let cfg = valid_config(p_eng, blocks.max(1) + 1, 4);
        let acc = Accelerator::new(cfg.clone()).unwrap();
        let a = Matrix::zeros(cfg.rows, cfg.cols);
        let t1 = acc.run(&a).unwrap().timing.task_time;
        let t2 = acc.run(&a).unwrap().timing.task_time;
        prop_assert_eq!(t1, t2);
    }

    /// Kernel invocation counts follow the schedule combinatorics for
    /// any shape: iterations × block pairs × k(2k−1) orthogonalizations.
    #[test]
    fn invocation_counts_follow_combinatorics(p_eng in 1usize..5, blocks in 1usize..4) {
        let cfg = valid_config(p_eng, blocks + 1, 0);
        let acc = Accelerator::new(cfg.clone()).unwrap();
        let out = acc.run(&Matrix::zeros(cfg.rows, cfg.cols)).unwrap();
        let pairs_per_pass = p_eng * (2 * p_eng - 1);
        prop_assert_eq!(
            out.stats.orth_invocations,
            cfg.num_block_pairs() * pairs_per_pass
        );
        prop_assert_eq!(out.stats.norm_invocations, cfg.cols);
        // Every pass moves 2k columns in and out of the array, plus the
        // norm stage's column round trip.
        let orth_bytes = cfg.num_block_pairs() * 2 * p_eng * cfg.column_bytes();
        let norm_bytes = cfg.cols * cfg.column_bytes();
        prop_assert_eq!(out.stats.plio_bytes_in, orth_bytes + norm_bytes);
        prop_assert_eq!(out.stats.plio_bytes_out, orth_bytes + norm_bytes);
    }

    /// More iterations never reduce the simulated latency.
    #[test]
    fn latency_monotone_in_iterations(iters in 1usize..6) {
        let mk = |i: usize| {
            let cfg = HeteroSvdConfig::builder(32, 32)
                .engine_parallelism(4)
                .pl_freq_mhz(208.3)
                .fidelity(FidelityMode::TimingOnly)
                .fixed_iterations(i)
                .build()
                .unwrap();
            Accelerator::new(cfg)
                .unwrap()
                .run(&Matrix::zeros(32, 32))
                .unwrap()
                .timing
                .task_time
        };
        prop_assert!(mk(iters + 1) > mk(iters));
    }

    /// The resource usage scales exactly linearly in task parallelism
    /// for AIE/PLIO/URAM.
    #[test]
    fn usage_scales_in_tasks(p_task in 1usize..6) {
        let base = HeteroSvdConfig::builder(64, 64)
            .engine_parallelism(4)
            .task_parallelism(1)
            .build()
            .unwrap();
        let scaled = HeteroSvdConfig::builder(64, 64)
            .engine_parallelism(4)
            .task_parallelism(p_task)
            .build()
            .unwrap();
        let u1 = Placement::plan(&base).unwrap().usage();
        let un = Placement::plan(&scaled).unwrap().usage();
        prop_assert_eq!(un.aie, p_task * u1.aie);
        prop_assert_eq!(un.plio, p_task * u1.plio);
        prop_assert_eq!(un.uram, p_task * u1.uram);
    }
}

// ---------------------------------------------------------------------
// Sub-grid allocator invariants (multi-problem array packing).

use aie_sim::geometry::ArrayGeometry;
use heterosvd::{tenant_capacity, tenant_stripe_width, SubGrid, SubGridAllocator};

fn assert_disjoint_and_in_bounds(grids: &[SubGrid], geometry: ArrayGeometry) {
    for (i, g) in grids.iter().enumerate() {
        assert!(g.origin.row + g.rows <= geometry.rows, "{g:?} exceeds rows");
        assert!(g.origin.col + g.cols <= geometry.cols, "{g:?} exceeds cols");
        assert!(g.origin.row % 2 == 0, "{g:?} breaks row-parity alignment");
        for other in &grids[i + 1..] {
            assert!(!g.overlaps(other), "{g:?} overlaps {other:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of first-fit allocations yields pairwise-disjoint,
    /// in-bounds, parity-aligned regions, and the occupancy ledger
    /// matches the sum of the granted areas.
    #[test]
    fn allocations_are_disjoint_parity_aligned_and_accounted(
        requests in prop::collection::vec((1usize..=8, 1usize..=12), 1..12)
    ) {
        let geometry = ArrayGeometry::VCK190;
        let mut allocator = SubGridAllocator::new(geometry);
        let mut granted: Vec<SubGrid> = Vec::new();
        for (rows, cols) in requests {
            if let Some(grid) = allocator.allocate(rows, cols) {
                prop_assert_eq!(grid.rows, rows);
                prop_assert_eq!(grid.cols, cols);
                granted.push(grid);
            }
        }
        assert_disjoint_and_in_bounds(&granted, geometry);
        let area: usize = granted.iter().map(SubGrid::area).sum();
        prop_assert_eq!(allocator.used_tiles(), area);
        prop_assert_eq!(allocator.free_tiles(), geometry.num_tiles() - area);
    }

    /// Releasing every granted region, in any order, restores the exact
    /// empty free set — the allocator is bit-for-bit equal to a fresh
    /// one and fragmentation returns to zero.
    #[test]
    fn release_in_any_order_restores_the_exact_free_set(
        requests in prop::collection::vec((1usize..=8, 1usize..=12), 1..10),
        rotate in 0usize..10
    ) {
        let geometry = ArrayGeometry::VCK190;
        let mut allocator = SubGridAllocator::new(geometry);
        let mut granted: Vec<SubGrid> = requests
            .iter()
            .filter_map(|&(r, c)| allocator.allocate(r, c))
            .collect();
        if !granted.is_empty() {
            let mid = rotate % granted.len();
            granted.rotate_left(mid); // release order != allocation order
        }
        for grid in &granted {
            allocator.release(grid).unwrap();
            // Double release must fail and must not corrupt the ledger.
            prop_assert!(allocator.release(grid).is_err());
        }
        prop_assert_eq!(&allocator, &SubGridAllocator::new(geometry));
        prop_assert_eq!(allocator.free_tiles(), geometry.num_tiles());
        prop_assert!(allocator.fragmentation() == 0.0);
    }

    /// Tenant stripes: exactly `tenant_capacity` full-height stripes fit
    /// (then allocation fails), each of the published width, pairwise
    /// disjoint.
    #[test]
    fn tenant_stripes_fill_exactly_to_capacity(p_eng in 1usize..=8) {
        let geometry = ArrayGeometry::VCK190;
        let capacity = tenant_capacity(geometry, p_eng);
        prop_assert!(capacity >= 1, "every P_eng must fit at least one tenant");
        let mut allocator = SubGridAllocator::new(geometry);
        let mut stripes = Vec::new();
        for _ in 0..capacity {
            let stripe = allocator.allocate_tenant(p_eng).unwrap();
            prop_assert_eq!(stripe.rows, geometry.rows, "stripes span all rows");
            prop_assert_eq!(stripe.cols, tenant_stripe_width(geometry, p_eng));
            stripes.push(stripe);
        }
        prop_assert!(allocator.allocate_tenant(p_eng).is_none(), "beyond capacity");
        assert_disjoint_and_in_bounds(&stripes, geometry);
    }

    /// Batch placement is all-or-nothing: on success the grids come back
    /// in request order with the requested dimensions; on failure the
    /// allocator is untouched.
    #[test]
    fn batch_placement_is_atomic_and_order_preserving(
        requests in prop::collection::vec((1usize..=8, 1usize..=20), 1..8)
    ) {
        let geometry = ArrayGeometry::VCK190;
        let mut allocator = SubGridAllocator::new(geometry);
        let before = allocator.clone();
        match allocator.allocate_batch(&requests) {
            Some(grids) => {
                prop_assert_eq!(grids.len(), requests.len());
                for (grid, &(rows, cols)) in grids.iter().zip(&requests) {
                    prop_assert_eq!(grid.rows, rows);
                    prop_assert_eq!(grid.cols, cols);
                }
                assert_disjoint_and_in_bounds(&grids, geometry);
            }
            None => prop_assert_eq!(&allocator, &before),
        }
    }
}
