//! Property-based tests of the accelerator's structural invariants.

use heterosvd::placement::Placement;
use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use proptest::prelude::*;
use svd_kernels::Matrix;

fn valid_config(p_eng: usize, blocks: usize, rows_extra: usize) -> HeteroSvdConfig {
    let cols = 2 * p_eng * blocks;
    HeteroSvdConfig::builder(cols + rows_extra, cols)
        .engine_parallelism(p_eng)
        .pl_freq_mhz(208.3)
        .fidelity(FidelityMode::TimingOnly)
        .fixed_iterations(1)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Placement counts follow the Table I formulas for every valid
    /// engine parallelism.
    #[test]
    fn placement_counts_follow_formulas(p_eng in 1usize..=11, blocks in 1usize..4) {
        let cfg = valid_config(p_eng, blocks, 0);
        let p = Placement::plan(&cfg).unwrap();
        let k = p_eng;
        let layers = 2 * k - 1;
        prop_assert_eq!(p.num_layers(), layers);
        prop_assert_eq!(p.counts().orth, k * layers);
        prop_assert_eq!(p.counts().norm, k);
        // mem = (bands-1)*k mem-layer tiles + one DMA tile per layer.
        let bands = layers.div_ceil(6);
        prop_assert_eq!(p.counts().mem, (bands - 1) * k + layers);
        // Every orth tile is on an interior row.
        for l in 0..layers {
            prop_assert!((1..=6).contains(&p.row_of_layer(l)));
            for t in p.orth_tiles(l) {
                prop_assert_eq!(t.row, p.row_of_layer(l));
            }
        }
    }

    /// The simulated clock is deterministic: the same configuration and
    /// shape always produce the same latency.
    #[test]
    fn timing_is_deterministic(p_eng in 1usize..5, blocks in 1usize..3) {
        let cfg = valid_config(p_eng, blocks.max(1) + 1, 4);
        let acc = Accelerator::new(cfg.clone()).unwrap();
        let a = Matrix::zeros(cfg.rows, cfg.cols);
        let t1 = acc.run(&a).unwrap().timing.task_time;
        let t2 = acc.run(&a).unwrap().timing.task_time;
        prop_assert_eq!(t1, t2);
    }

    /// Kernel invocation counts follow the schedule combinatorics for
    /// any shape: iterations × block pairs × k(2k−1) orthogonalizations.
    #[test]
    fn invocation_counts_follow_combinatorics(p_eng in 1usize..5, blocks in 1usize..4) {
        let cfg = valid_config(p_eng, blocks + 1, 0);
        let acc = Accelerator::new(cfg.clone()).unwrap();
        let out = acc.run(&Matrix::zeros(cfg.rows, cfg.cols)).unwrap();
        let pairs_per_pass = p_eng * (2 * p_eng - 1);
        prop_assert_eq!(
            out.stats.orth_invocations,
            cfg.num_block_pairs() * pairs_per_pass
        );
        prop_assert_eq!(out.stats.norm_invocations, cfg.cols);
        // Every pass moves 2k columns in and out of the array, plus the
        // norm stage's column round trip.
        let orth_bytes = cfg.num_block_pairs() * 2 * p_eng * cfg.column_bytes();
        let norm_bytes = cfg.cols * cfg.column_bytes();
        prop_assert_eq!(out.stats.plio_bytes_in, orth_bytes + norm_bytes);
        prop_assert_eq!(out.stats.plio_bytes_out, orth_bytes + norm_bytes);
    }

    /// More iterations never reduce the simulated latency.
    #[test]
    fn latency_monotone_in_iterations(iters in 1usize..6) {
        let mk = |i: usize| {
            let cfg = HeteroSvdConfig::builder(32, 32)
                .engine_parallelism(4)
                .pl_freq_mhz(208.3)
                .fidelity(FidelityMode::TimingOnly)
                .fixed_iterations(i)
                .build()
                .unwrap();
            Accelerator::new(cfg)
                .unwrap()
                .run(&Matrix::zeros(32, 32))
                .unwrap()
                .timing
                .task_time
        };
        prop_assert!(mk(iters + 1) > mk(iters));
    }

    /// The resource usage scales exactly linearly in task parallelism
    /// for AIE/PLIO/URAM.
    #[test]
    fn usage_scales_in_tasks(p_task in 1usize..6) {
        let base = HeteroSvdConfig::builder(64, 64)
            .engine_parallelism(4)
            .task_parallelism(1)
            .build()
            .unwrap();
        let scaled = HeteroSvdConfig::builder(64, 64)
            .engine_parallelism(4)
            .task_parallelism(p_task)
            .build()
            .unwrap();
        let u1 = Placement::plan(&base).unwrap().usage();
        let un = Placement::plan(&scaled).unwrap().usage();
        prop_assert_eq!(un.aie, p_task * u1.aie);
        prop_assert_eq!(un.plio, p_task * u1.plio);
        prop_assert_eq!(un.uram, p_task * u1.uram);
    }
}
