//! Steady-state hot-path allocation audit.
//!
//! The orthogonalization inner loop (`OrthPipeline::run_pass`) executes
//! once per block pair per iteration; the PR-2 optimization hoisted all
//! of its scratch into buffers owned by the pipeline. This test installs
//! a counting global allocator and proves the property the design doc
//! claims: after a warm-up iteration, further iterations perform ZERO
//! heap allocations.
//!
//! This lives in its own integration-test binary so the
//! `#[global_allocator]` cannot interfere with other tests, and it
//! contains a single `#[test]` so no sibling test thread can allocate
//! inside the tracked window.

use heterosvd::orth_pipeline::OrthPipeline;
use heterosvd::{HeteroSvdConfig, PlanHandle};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use svd_kernels::Matrix;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_iterations_do_not_allocate() {
    // Leave observability ON but sample every span out: the hot path
    // still walks the record() entry (two relaxed atomics) and must not
    // reach the journal's ring mutex or any heap.
    heterosvd::obs::configure(heterosvd::obs::ObsConfig {
        enabled: true,
        sample_every: u64::MAX,
    });
    let cfg = HeteroSvdConfig::builder(32, 32)
        .engine_parallelism(4)
        .functional_parallelism(1)
        .pl_freq_mhz(208.3)
        .build()
        .unwrap();
    let plan = PlanHandle::build(&cfg).unwrap();
    let mut pipe = OrthPipeline::new(&cfg, &plan);
    pipe.set_norm_floor_sq(0.0);
    // `adaptive_sweeps` defaults on, so the dirty-column versions and the
    // per-pair visit cache are live. Arm the threshold gate so the tracked
    // iterations exercise the full adaptive path — gating, version bumps,
    // and cache-hit memo skips — not just the inert threshold-0 sweep.
    pipe.set_rotation_threshold(1e-3);
    let mut b = Matrix::from_fn(32, 32, |r, c| {
        (((r * 31 + c * 17 + 3) % 13) as f32) / 3.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
    });

    // Warm-up: the first iteration may lazily size anything left.
    pipe.run_iteration(&mut b);

    let counters_before = pipe
        .adaptive_counters()
        .expect("adaptive engine on by default");
    TRACKING.store(true, Ordering::SeqCst);
    for _ in 0..3 {
        pipe.run_iteration(&mut b);
    }
    TRACKING.store(false, Ordering::SeqCst);

    let allocations = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocations, 0,
        "steady-state run_pass must not touch the allocator ({allocations} allocations observed \
         across 3 iterations)"
    );
    let counters_after = pipe.adaptive_counters().unwrap();
    assert!(
        counters_after.gated_rotations > counters_before.gated_rotations
            || counters_after.memo_skips > counters_before.memo_skips,
        "tracked iterations were expected to exercise the adaptive gate \
         (before {counters_before:?}, after {counters_after:?})"
    );

    // The timing-replay path must uphold the same guarantee: profile
    // lookups plus the rotation math, nothing heap-bound per iteration.
    let profile = plan
        .timing_profile(&cfg)
        .expect("plan reaches a steady state");
    let mut replayed = OrthPipeline::new(&cfg, &plan);
    replayed.set_norm_floor_sq(0.0);
    replayed.set_block_ready(profile.initial_block_ready().to_vec());
    replayed.set_replay_profile(profile);
    let mut b2 = Matrix::from_fn(32, 32, |r, c| {
        (((r * 31 + c * 17 + 3) % 13) as f32) / 3.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
    });
    replayed.run_iteration(&mut b2);
    assert!(replayed.replay_active(), "profile should activate replay");

    ALLOCATIONS.store(0, Ordering::SeqCst);
    TRACKING.store(true, Ordering::SeqCst);
    for _ in 0..3 {
        replayed.run_iteration(&mut b2);
    }
    TRACKING.store(false, Ordering::SeqCst);

    let allocations = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocations, 0,
        "replayed iterations must not touch the allocator ({allocations} allocations observed \
         across 3 iterations)"
    );
}
