//! Shared, immutable accelerator plans and their cache.
//!
//! Planning an accelerator — placing the orth-layers, deriving the
//! hardware schedule, building the calibrated timing models, and
//! analyzing every inter-layer movement — is pure: it depends only on
//! the problem shape and the architectural knobs, never on matrix
//! contents or runtime state. [`PlanHandle`] freezes all of it into one
//! immutable object that every pipeline instance borrows, and
//! [`PlanCache`] shares those objects across accelerator instances:
//! a serving pool that clones one accelerator per replica now plans
//! once instead of once per worker.
//!
//! The cache key is `(shape, fingerprint)` where the fingerprint hashes
//! exactly the config fields a plan depends on (`P_eng`, `P_task`, the
//! co-residency class, PL frequency, ordering, dataflow, device,
//! calibration). Numerical knobs (precision, iteration policy, fidelity,
//! trace recording, functional parallelism) are deliberately excluded —
//! a serial and a parallel run of the same design share one plan. The
//! co-residency class *is* fingerprinted because the lazily probed
//! timing profile cached on the plan embeds contention-scaled PLIO/DDR
//! durations: a packed wave and a solo run must not share a probe.

use crate::config::HeteroSvdConfig;
use crate::placement::Placement;
use crate::routing::PlioPlan;
use crate::HeteroSvdError;
use aie_sim::dma::DmaModel;
use aie_sim::kernel::KernelCostModel;
use aie_sim::pl::PlModel;
use aie_sim::plio::PlioModel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use svd_kernels::block::{BlockPairSchedule, BlockPartition};
use svd_orderings::movement::{classify, AccessKind, Movement};
use svd_orderings::HardwareSchedule;

/// How a column reaches its slot across one layer transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Shared-buffer neighbor access (lock hand-off).
    Neighbor,
    /// Lateral DMA along the row's stream switch.
    Lateral,
    /// Wraparound DMA through the layer's DMA-layer tile.
    Wrap,
    /// Band-break: two DMA hops through the boundary mem-layer.
    BandBreak,
}

/// One column movement of a layer transition, pre-classified at plan
/// time so the per-pass hot loop neither allocates nor re-derives the
/// movement pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MovementStep {
    /// Destination slot in the new layer.
    pub slot: usize,
    /// Source slot in the previous layer.
    pub producer: usize,
    /// Transport class (decides cost model and channel).
    pub kind: StepKind,
}

/// An immutable, shareable accelerator plan: everything about a design
/// that is independent of the matrices it will factorize.
#[derive(Debug)]
pub struct PlanHandle {
    /// The physical placement (layer rows, bands, tile assignment).
    pub placement: Placement,
    /// The `2k−1`-layer orthogonalization schedule.
    pub schedule: HardwareSchedule,
    /// Column blocking.
    pub partition: BlockPartition,
    /// Round-robin block-pair order of one iteration.
    pub pair_schedule: BlockPairSchedule,
    /// PLIO port assignment.
    pub plio_plan: PlioPlan,
    /// Calibrated PLIO transfer model.
    pub plio: PlioModel,
    /// Calibrated DMA model.
    pub dma: DmaModel,
    /// Calibrated kernel cost model.
    pub kernels: KernelCostModel,
    /// Calibrated PL model.
    pub pl: PlModel,
    /// Pre-classified movements of each layer transition:
    /// `movement[layer - 1]` holds the steps into `layer`.
    pub movement: Vec<Vec<MovementStep>>,
    /// Lazily probed timing-replay profile (see [`crate::replay`]):
    /// `None` before the first probe, `Some(None)` when the probe found
    /// no steady state. Cached here so every run of the plan — across
    /// accelerator clones and serving replicas — probes at most once.
    timing_profile: OnceLock<Option<Arc<crate::replay::TimingProfile>>>,
}

impl PlanHandle {
    /// Plans a design: placement, schedule, models, movement analysis.
    ///
    /// # Errors
    ///
    /// [`HeteroSvdError::Infeasible`] when the placement does not fit.
    pub fn build(config: &HeteroSvdConfig) -> Result<Self, HeteroSvdError> {
        let placement = Placement::plan(config)?;
        let k = config.engine_parallelism;
        let partition =
            BlockPartition::new(config.cols, k).expect("config validation guarantees divisibility");
        let layers = placement.num_layers();

        let mut movement = Vec::with_capacity(layers.saturating_sub(1));
        for layer in 1..layers {
            let src_row = placement.row_of_layer(layer - 1);
            let dest_row = placement.row_of_layer(layer);
            let band_break = placement.is_band_break(layer - 1);
            let moves = config
                .ordering
                .transition_movements_rows(src_row, dest_row, k);
            let mut steps = Vec::with_capacity(moves.len());
            for (idx, mv) in moves.iter().enumerate() {
                let slot = idx % k;
                let producer = match mv {
                    Movement::Straight => slot,
                    Movement::Leftward => (slot + 1).min(k - 1),
                    Movement::Rightward => slot.saturating_sub(1),
                    Movement::Wraparound => k - 1,
                };
                let kind = if band_break {
                    StepKind::BandBreak
                } else {
                    match classify(*mv, dest_row, config.dataflow) {
                        AccessKind::Neighbor => StepKind::Neighbor,
                        AccessKind::Dma if *mv == Movement::Wraparound => StepKind::Wrap,
                        AccessKind::Dma => StepKind::Lateral,
                    }
                };
                steps.push(MovementStep {
                    slot,
                    producer,
                    kind,
                });
            }
            movement.push(steps);
        }

        Ok(PlanHandle {
            placement,
            schedule: HardwareSchedule::new(k, config.ordering),
            partition,
            pair_schedule: BlockPairSchedule::round_robin(partition.num_blocks()),
            plio_plan: PlioPlan::standard(),
            plio: PlioModel::new(config.calibration, config.pl_freq),
            dma: DmaModel::new(config.calibration),
            kernels: KernelCostModel::new(config.calibration),
            pl: PlModel::new(config.calibration),
            movement,
            timing_profile: OnceLock::new(),
        })
    }

    /// This plan's timing-replay profile, probing it on first use and
    /// caching the result (including a failed probe). The profile
    /// depends only on plan-relevant config fields — the same fields
    /// [`PlanKey`] fingerprints — so one probe is sound for every config
    /// that shares this plan.
    pub fn timing_profile(
        &self,
        config: &HeteroSvdConfig,
    ) -> Option<Arc<crate::replay::TimingProfile>> {
        self.timing_profile
            .get_or_init(|| crate::replay::TimingProfile::build(config, self).map(Arc::new))
            .clone()
    }
}

/// Cache key: problem shape plus a fingerprint of every plan-relevant
/// config field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    rows: usize,
    cols: usize,
    fingerprint: u64,
}

impl PlanKey {
    /// Derives the key of `config`'s plan.
    pub fn of(config: &HeteroSvdConfig) -> Self {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        config.engine_parallelism.hash(&mut h);
        config.task_parallelism.hash(&mut h);
        config.co_residency.hash(&mut h);
        config.pl_freq.mhz().to_bits().hash(&mut h);
        // Structured knobs hash via their serialized form, which the
        // vendored serde stack supports for any derived `Serialize`.
        for json in [
            serde_json::to_string(&config.ordering),
            serde_json::to_string(&config.dataflow),
            serde_json::to_string(&config.device),
            serde_json::to_string(&config.calibration),
        ] {
            json.expect("config knobs serialize infallibly")
                .hash(&mut h);
        }
        PlanKey {
            rows: config.rows,
            cols: config.cols,
            fingerprint: h.finish(),
        }
    }
}

struct CacheInner {
    /// Cached plans plus a monotonically increasing last-use stamp.
    plans: HashMap<PlanKey, (Arc<PlanHandle>, u64)>,
    /// Times each key's plan was (re)built — probe for tests asserting
    /// that replicas share rather than re-plan.
    builds: HashMap<PlanKey, u64>,
    clock: u64,
}

/// Counter snapshot of a [`PlanCache`] (exported through the serving
/// metrics report, satellite of the factor-store subsystem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Plans dropped by the LRU policy.
    pub evictions: u64,
    /// Plans currently resident.
    pub resident: u64,
    /// The configured capacity.
    pub capacity: u64,
}

/// A small LRU cache of [`PlanHandle`]s.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// Creates a cache retaining at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                plans: HashMap::new(),
                builds: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the shared plan for `config`, building (and caching) it
    /// on first use. Building happens under the cache lock, so
    /// concurrent replicas of one design trigger exactly one build.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanHandle::build`] failures (nothing is cached).
    pub fn get_or_build(
        &self,
        config: &HeteroSvdConfig,
    ) -> Result<Arc<PlanHandle>, HeteroSvdError> {
        let key = PlanKey::of(config);
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some((plan, last_use)) = inner.plans.get_mut(&key) {
            *last_use = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(PlanHandle::build(config)?);
        *inner.builds.entry(key).or_insert(0) += 1;
        if inner.plans.len() >= self.capacity {
            if let Some(oldest) = inner
                .plans
                .iter()
                .min_by_key(|(_, (_, last_use))| *last_use)
                .map(|(k, _)| *k)
            {
                inner.plans.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.plans.insert(key, (Arc::clone(&plan), stamp));
        Ok(plan)
    }

    /// Builds (or retrieves) the plan for `config` and probes its
    /// timing-replay profile up front. The online-DSE autoscaler calls
    /// this for every observed shape before hot-swapping replicas to a
    /// winning plan, so the first post-swap batch replays a cached
    /// steady-state profile instead of paying the probe inline.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanHandle::build`] failures (nothing is cached).
    pub fn prewarm(&self, config: &HeteroSvdConfig) -> Result<Arc<PlanHandle>, HeteroSvdError> {
        let plan = self.get_or_build(config)?;
        if config.timing_replay {
            let _ = plan.timing_profile(config);
        }
        Ok(plan)
    }

    /// Whether `config`'s plan is already resident (no build, no LRU
    /// touch — a read-only probe for swap readiness).
    pub fn contains(&self, config: &HeteroSvdConfig) -> bool {
        let key = PlanKey::of(config);
        self.inner.lock().unwrap().plans.contains_key(&key)
    }

    /// How many plans the cache currently retains.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().plans.len()
    }

    /// `true` when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many times `config`'s plan has been built by this cache
    /// (0 = never; 1 = planned once and shared since).
    pub fn builds_for(&self, config: &HeteroSvdConfig) -> u64 {
        let key = PlanKey::of(config);
        *self.inner.lock().unwrap().builds.get(&key).unwrap_or(&0)
    }

    /// Counter snapshot for the metrics path.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: self.len() as u64,
            capacity: self.capacity as u64,
        }
    }
}

/// Maximum plans the process-wide cache retains.
pub const GLOBAL_PLAN_CAPACITY: usize = 16;

/// The process-wide plan cache every [`crate::Accelerator`] uses.
pub fn global() -> &'static PlanCache {
    static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
    GLOBAL.get_or_init(|| PlanCache::new(GLOBAL_PLAN_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize, p_eng: usize) -> HeteroSvdConfig {
        HeteroSvdConfig::builder(n, n)
            .engine_parallelism(p_eng)
            .pl_freq_mhz(208.3)
            .build()
            .unwrap()
    }

    #[test]
    fn prewarm_builds_once_and_marks_residency() {
        let cache = PlanCache::new(4);
        let cfg = config(16, 2);
        assert!(!cache.contains(&cfg));
        let a = cache.prewarm(&cfg).unwrap();
        assert!(cache.contains(&cfg));
        assert_eq!(cache.builds_for(&cfg), 1);
        // Prewarming again (the autoscaler re-confirming a plan) reuses
        // the same handle and probes nothing new.
        let b = cache.prewarm(&cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.builds_for(&cfg), 1);
    }

    #[test]
    fn identical_configs_share_one_plan() {
        let cache = PlanCache::new(4);
        let a = cache.get_or_build(&config(16, 2)).unwrap();
        let b = cache.get_or_build(&config(16, 2)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.builds_for(&config(16, 2)), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn numerical_knobs_do_not_split_plans() {
        let cache = PlanCache::new(4);
        let base = config(16, 2);
        let mut tweaked = base.clone();
        tweaked.precision = 1e-3;
        tweaked.record_trace = true;
        tweaked.functional_parallelism = 8;
        tweaked.fixed_iterations = Some(3);
        tweaked.timing_replay = false;
        tweaked.cross_batch_pipelining = true;
        tweaked.adaptive_sweeps = !base.adaptive_sweeps;
        tweaked.incremental = !base.incremental;
        let a = cache.get_or_build(&base).unwrap();
        let b = cache.get_or_build(&tweaked).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_designs_get_distinct_plans() {
        let cache = PlanCache::new(8);
        let a = cache.get_or_build(&config(16, 2)).unwrap();
        let b = cache.get_or_build(&config(32, 2)).unwrap();
        let c = cache.get_or_build(&config(16, 4)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn co_residency_classes_split_plans() {
        // The cached timing profile embeds contention-scaled durations,
        // so co-residency classes must never share a plan (and hence
        // never share a probe).
        let cache = PlanCache::new(8);
        let solo = config(16, 2);
        let mut packed = solo.clone();
        packed.co_residency = 4;
        let a = cache.get_or_build(&solo).unwrap();
        let b = cache.get_or_build(&packed).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_evicts_beyond_capacity() {
        let cache = PlanCache::new(2);
        let a1 = cache.get_or_build(&config(16, 2)).unwrap();
        cache.get_or_build(&config(32, 2)).unwrap();
        // Touch the first so the second is the LRU victim.
        cache.get_or_build(&config(16, 2)).unwrap();
        cache.get_or_build(&config(48, 2)).unwrap();
        assert_eq!(cache.len(), 2);
        // First plan still shared (not rebuilt)...
        let a2 = cache.get_or_build(&config(16, 2)).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(cache.builds_for(&config(16, 2)), 1);
        // ...while the evicted one rebuilds on next use.
        cache.get_or_build(&config(32, 2)).unwrap();
        assert_eq!(cache.builds_for(&config(32, 2)), 2);
    }

    #[test]
    fn stats_count_hits_misses_and_evictions() {
        let cache = PlanCache::new(2);
        cache.get_or_build(&config(16, 2)).unwrap(); // miss
        cache.get_or_build(&config(16, 2)).unwrap(); // hit
        cache.get_or_build(&config(32, 2)).unwrap(); // miss
        cache.get_or_build(&config(48, 2)).unwrap(); // miss + eviction
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.capacity, 2);
    }

    #[test]
    fn timing_profile_probes_once_and_is_shared() {
        let cfg = config(16, 2);
        let plan = PlanHandle::build(&cfg).unwrap();
        let a = plan.timing_profile(&cfg).expect("steady state");
        let b = plan.timing_profile(&cfg).expect("cached");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn movement_table_covers_every_transition() {
        let cfg = config(24, 3);
        let plan = PlanHandle::build(&cfg).unwrap();
        assert_eq!(plan.movement.len(), plan.placement.num_layers() - 1);
        for steps in &plan.movement {
            assert_eq!(steps.len(), 2 * cfg.engine_parallelism);
            for s in steps {
                assert!(s.slot < cfg.engine_parallelism);
                assert!(s.producer < cfg.engine_parallelism);
            }
        }
    }
}
