//! Persistent, bounded worker pool for batch factorizations.
//!
//! [`crate::Accelerator::run_many`] used to spawn one OS thread per
//! matrix per batch — thread creation on every call, unbounded
//! concurrency for large batches. The pool replaces that with a fixed
//! set of long-lived workers (sized to the host, capped at
//! [`MAX_BATCH_WORKERS`]) shared process-wide: batches from every
//! accelerator and every serving replica feed one queue, tasks drain as
//! workers free up, and results return to each caller in submission
//! order.
//!
//! A panicking task is contained on the worker (which survives and
//! keeps serving) and surfaces to its caller as
//! [`HeteroSvdError::WorkerPanicked`], matching the old scoped-thread
//! semantics.
//!
//! Tasks must not themselves block on [`BatchPool::run_batch`] — a task
//! waiting for pool capacity it is occupying would deadlock once every
//! worker does it. The accelerator's tasks are plain `run_owned` calls,
//! which never re-enter the pool.

use crate::accelerator::HeteroSvdOutput;
use crate::HeteroSvdError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bound on pool workers; beyond this, batch tasks queue.
pub const MAX_BATCH_WORKERS: usize = 16;

type BatchResult = Result<HeteroSvdOutput, HeteroSvdError>;
type BatchTask = Box<dyn FnOnce() -> BatchResult + Send + 'static>;

/// A type-erased unit of pool work: the thunk owns its task, its reply
/// channel, and its panic handling, so workers stay oblivious to the
/// result type and the pool can serve heterogeneous callers
/// (factorizations, DSE sweeps, …) from one queue.
struct Job {
    thunk: Box<dyn FnOnce() + Send + 'static>,
}

/// A fixed-size pool of batch workers fed by one shared queue.
pub struct BatchPool {
    submit: Sender<Job>,
    workers: usize,
}

impl BatchPool {
    /// Spawns a pool with `workers` long-lived worker threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (submit, jobs) = channel::<Job>();
        let jobs = Arc::new(Mutex::new(jobs));
        for i in 0..workers {
            let jobs = Arc::clone(&jobs);
            std::thread::Builder::new()
                .name(format!("svd-batch-{i}"))
                .spawn(move || worker_main(jobs))
                .expect("failed to spawn batch worker");
        }
        BatchPool { submit, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every task on the pool and returns their results in
    /// submission order, or the first (by submission order) error.
    ///
    /// # Errors
    ///
    /// The first failing task's error; a panicking task surfaces as
    /// [`HeteroSvdError::WorkerPanicked`].
    pub fn run_batch(&self, tasks: Vec<BatchTask>) -> Result<Vec<HeteroSvdOutput>, HeteroSvdError> {
        self.run_batch_with(tasks)
    }

    /// [`Self::run_batch`] for arbitrary result types: runs every task
    /// on the pool and returns their `Ok` values in submission order,
    /// or the first (by submission order) error.
    ///
    /// This is the entry point for non-factorization batch work (the
    /// DSE sweep parallelizes its `P_eng` columns here), so the whole
    /// workspace shares one bounded set of worker threads instead of
    /// spawning scoped threads per call site.
    ///
    /// # Errors
    ///
    /// The first failing task's error; a panicking task surfaces as
    /// [`HeteroSvdError::WorkerPanicked`].
    pub fn run_batch_with<T, F>(&self, tasks: Vec<F>) -> Result<Vec<T>, HeteroSvdError>
    where
        T: Send + 'static,
        F: FnOnce() -> Result<T, HeteroSvdError> + Send + 'static,
    {
        let n = tasks.len();
        let (reply, results) = channel::<(usize, Result<T, HeteroSvdError>)>();
        for (seq, task) in tasks.into_iter().enumerate() {
            let reply = reply.clone();
            let job = Job {
                thunk: Box::new(move || {
                    let result = catch_unwind(AssertUnwindSafe(task)).unwrap_or_else(|payload| {
                        Err(HeteroSvdError::worker_panicked(payload.as_ref()))
                    });
                    // The caller may have bailed on an earlier error;
                    // that is fine.
                    let _ = reply.send((seq, result));
                }),
            };
            // Workers live for the whole process; the queue never closes.
            self.submit.send(job).expect("batch pool queue closed");
        }
        drop(reply);
        let mut slots: Vec<Option<Result<T, HeteroSvdError>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (seq, result) = results.recv().map_err(|_| {
                HeteroSvdError::WorkerPanicked("batch pool reply channel closed".into())
            })?;
            slots[seq] = Some(result);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every task replies exactly once"))
            .collect()
    }
}

fn worker_main(jobs: Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let queue = match jobs.lock() {
                Ok(queue) => queue,
                Err(poisoned) => poisoned.into_inner(),
            };
            match queue.recv() {
                Ok(job) => job,
                // Queue dropped: the pool is gone, retire the worker.
                Err(_) => return,
            }
        };
        // The thunk contains its own panic barrier and reply; nothing
        // here can unwind across the loop.
        (job.thunk)();
    }
}

/// The process-wide pool every [`crate::Accelerator::run_many`] call
/// shares, sized to the host's available parallelism.
pub fn global() -> &'static BatchPool {
    static GLOBAL: OnceLock<BatchPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        BatchPool::new(svd_kernels::parallel::available_workers().clamp(1, MAX_BATCH_WORKERS))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Accelerator, HeteroSvdConfig};
    use svd_kernels::Matrix;

    fn tiny_output() -> BatchResult {
        let cfg = HeteroSvdConfig::builder(16, 16)
            .engine_parallelism(2)
            .pl_freq_mhz(208.3)
            .build()
            .unwrap();
        let acc = Accelerator::new(cfg).unwrap();
        let a = Matrix::from_fn(16, 16, |r, c| {
            ((r * 41 + c * 17 + 5) % 23) as f64 / 5.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
        });
        acc.run(&a)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = BatchPool::new(3);
        let tasks: Vec<BatchTask> = (0..6).map(|_| Box::new(tiny_output) as BatchTask).collect();
        let outs = pool.run_batch(tasks).unwrap();
        assert_eq!(outs.len(), 6);
        // The pool persists: a second batch reuses the same workers.
        let again: Vec<BatchTask> = (0..2).map(|_| Box::new(tiny_output) as BatchTask).collect();
        assert_eq!(pool.run_batch(again).unwrap().len(), 2);
    }

    #[test]
    fn panicking_task_surfaces_as_error_and_pool_survives() {
        let pool = BatchPool::new(2);
        let tasks: Vec<BatchTask> = vec![
            Box::new(tiny_output),
            Box::new(|| panic!("injected batch worker failure")),
        ];
        let err = pool.run_batch(tasks).unwrap_err();
        assert!(
            matches!(
                &err,
                HeteroSvdError::WorkerPanicked(msg) if msg.contains("injected batch worker failure")
            ),
            "unexpected error: {err:?}"
        );
        // The worker that contained the panic still serves new tasks.
        let tasks: Vec<BatchTask> = (0..4).map(|_| Box::new(tiny_output) as BatchTask).collect();
        assert_eq!(pool.run_batch(tasks).unwrap().len(), 4);
    }
}
