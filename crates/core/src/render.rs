//! Text rendering of placements and dataflows (the Fig. 5 diagram,
//! regenerated from the actual placement engine).
//!
//! Legend: `O` orth-AIE, `N` norm-AIE, `M` mem-layer AIE, `D` DMA-layer
//! AIE, `.` idle tile. Row 0 (bottom line) touches the PL interface.

use crate::orth_pipeline::PassRecord;
use crate::placement::Placement;
use std::fmt::Write;

impl Placement {
    /// Renders the placement of one task pipeline as an ASCII grid
    /// (highest row first, like the paper's figures), clipped to the
    /// columns the pipeline occupies plus one idle margin.
    pub fn render(&self) -> String {
        let rows = self.geometry().rows;
        let width = self.occupied_columns() + 1;

        let mut grid = vec![vec!['.'; width]; rows];
        let mut mark = |t: aie_sim::TileCoord, c: char| {
            if t.row < rows && t.col < width {
                grid[t.row][t.col] = c;
            }
        };
        for layer in 0..self.num_layers() {
            for &t in self.orth_tiles(layer) {
                mark(t, 'O');
            }
            mark(self.dma_tile(layer), 'D');
        }
        for &t in self.mem_layer_tiles() {
            mark(t, 'M');
        }
        for &t in self.norm_tiles() {
            mark(t, 'N');
        }

        let mut out = String::new();
        for row in (0..rows).rev() {
            let _ = write!(out, "row {row} |");
            for c in &grid[row] {
                let _ = write!(out, " {c}");
            }
            out.push('\n');
        }
        let _ = writeln!(out, "       +{}", "--".repeat(width));
        let _ = writeln!(
            out,
            "        {}",
            (0..width)
                .map(|c| format!("{:>1}", c % 10))
                .collect::<Vec<_>>()
                .join(" ")
        );
        out.push_str(
            "        (PL interface below row 0; O orth, N norm, M mem-layer, D DMA-layer)\n",
        );
        out
    }

    /// The number of array columns this pipeline's tiles span.
    pub fn occupied_columns(&self) -> usize {
        let mut max_col = 0;
        for layer in 0..self.num_layers() {
            max_col = max_col.max(self.dma_tile(layer).col);
        }
        max_col + 1
    }

    /// Array geometry the placement targets.
    pub fn geometry(&self) -> aie_sim::ArrayGeometry {
        self.array_geometry()
    }
}

/// Renders a pass-trace excerpt as an ASCII Gantt chart: one line per
/// block-pair pass, `#` spanning ready→end on a scaled time axis. Makes
/// the pipelining (overlapping passes) and round-boundary stalls of the
/// Fig. 7 model directly visible.
///
/// `width` is the chart width in characters; passes outside
/// `first..first + count` are skipped.
pub fn render_gantt(trace: &[PassRecord], first: usize, count: usize, width: usize) -> String {
    let slice: Vec<&PassRecord> = trace.iter().skip(first).take(count).collect();
    let Some(t0) = slice.first().map(|p| p.ready.0) else {
        return String::from("(empty trace)\n");
    };
    let t1 = slice
        .iter()
        .map(|p| p.end.0)
        .max()
        .unwrap_or(t0 + 1)
        .max(t0 + 1);
    let scale = |t: u64| ((t - t0) as u128 * (width as u128 - 1) / (t1 - t0) as u128) as usize;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>9} | time ({} .. {})",
        "pass",
        "blocks",
        aie_sim::TimePs(t0),
        aie_sim::TimePs(t1)
    );
    for p in &slice {
        let start = scale(p.ready.0.max(t0));
        let end = scale(p.end.0).max(start + 1);
        let mut bar = vec![' '; width];
        for cell in bar.iter_mut().take(end).skip(start) {
            *cell = '#';
        }
        let _ = writeln!(
            out,
            "{:>6} {:>9} |{}|",
            p.pass,
            format!("({},{})", p.blocks.0, p.blocks.1),
            bar.into_iter().collect::<String>()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeteroSvdConfig;

    fn placement(p_eng: usize) -> Placement {
        let cfg = HeteroSvdConfig::builder(64, 64)
            .engine_parallelism(p_eng)
            .build()
            .unwrap();
        Placement::plan(&cfg).unwrap()
    }

    /// The grid portion of a rendering (excluding the legend/axis).
    fn grid(render: &str) -> String {
        render
            .lines()
            .filter(|l| l.starts_with("row"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn render_shows_all_tile_kinds() {
        // k = 2 (Fig. 5's example is A_{m x 4}, i.e. block pairs of 4
        // columns on a (2k-1) x k = 3x2 orth array).
        let r = placement(2).render();
        let g = grid(&r);
        assert!(g.contains('O'));
        assert!(g.contains('N'));
        assert!(g.contains('D'));
        assert!(r.contains("row 0"));
        assert!(r.contains("row 7"));
        // Single band: no mem-layer tiles in the grid.
        assert!(!g.contains('M'));
    }

    #[test]
    fn multi_band_render_includes_mem_layers() {
        let r = placement(8).render();
        assert!(grid(&r).contains('M'));
        // 3 bands of width 9 span 27 columns.
        assert_eq!(placement(8).occupied_columns(), 27);
    }

    #[test]
    fn gantt_shows_overlapping_bars() {
        use crate::{Accelerator, FidelityMode, HeteroSvdConfig};
        let cfg = HeteroSvdConfig::builder(16, 16)
            .engine_parallelism(2)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(1)
            .record_trace(true)
            .build()
            .unwrap();
        let out = Accelerator::new(cfg)
            .unwrap()
            .run(&svd_kernels::Matrix::zeros(16, 16))
            .unwrap();
        let chart = super::render_gantt(&out.trace, 0, 8, 60);
        assert_eq!(chart.lines().count(), 9); // header + 8 passes
        assert!(chart.contains('#'));
        // Empty traces render gracefully.
        assert!(super::render_gantt(&[], 0, 4, 40).contains("empty"));
    }

    #[test]
    fn grid_counts_match_placement_counts() {
        let p = placement(4);
        let g = grid(&p.render());
        let count = |ch: char| g.chars().filter(|&c| c == ch).count();
        assert_eq!(count('O'), p.counts().orth);
        assert_eq!(count('N'), p.counts().norm);
        assert_eq!(count('M') + count('D'), p.counts().mem);
    }
}
