//! The accelerator driver: Algorithm 1 end to end.

use crate::config::{FidelityMode, HeteroSvdConfig};
use crate::norm_pipeline::run_norm_stage;
use crate::orth_pipeline::{AdaptiveCounters, OrthPipeline};
use crate::placement::Placement;
use crate::plan_cache::{self, PlanHandle};
use crate::timing::TimingBreakdown;
use crate::{batch_pool, replay, HeteroSvdError};
use aie_sim::ddr::DdrModel;
use aie_sim::resources::ResourceUsage;
use aie_sim::stats::SimStats;
use aie_sim::time::TimePs;
use std::sync::Arc;
use svd_kernels::jacobi::{SvdResult, SweepStats};
use svd_kernels::parallel::{with_pool, RotationPool};
use svd_kernels::{Matrix, SvdError};

/// Sweep accounting of a warm-started run (see
/// [`Accelerator::run_warm_f32`]): how many iterations the seeded
/// problem actually needed against the budget a cold run may spend, so
/// profilers and the serving metrics can attribute saved sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmStartCounters {
    /// Columns of the seeding basis `V_prev`.
    pub basis_cols: usize,
    /// Iterations the warm-started run used.
    pub warm_iterations: usize,
    /// The configured cold-run iteration ceiling
    /// ([`HeteroSvdConfig::max_iterations`], or the fixed count when
    /// pinned) — the budget a cold solve of the same problem may spend.
    pub cold_budget: usize,
}

impl WarmStartCounters {
    /// Iterations the warm start saved against the cold budget.
    pub fn iterations_saved(&self) -> usize {
        self.cold_budget.saturating_sub(self.warm_iterations)
    }
}

/// Everything one accelerator run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroSvdOutput {
    /// The factorization: `u` (normalized columns), `sigma`, convergence
    /// history. `v` is `None` — Algorithm 1 outputs `U` and `Σ` only.
    /// In timing-only fidelity the factors are zeros.
    pub result: SvdResult<f32>,
    /// Simulated hardware statistics.
    pub stats: SimStats,
    /// Timing breakdown (Eq. 8–14 decomposition).
    pub timing: TimingBreakdown,
    /// Resources the design occupies.
    pub usage: ResourceUsage,
    /// Per-pass execution trace (empty unless
    /// [`HeteroSvdConfig::record_trace`] is set).
    pub trace: Vec<crate::orth_pipeline::PassRecord>,
    /// Skipped-work counters of the convergence-adaptive engine (`None`
    /// with [`HeteroSvdConfig::adaptive_sweeps`] off or outside
    /// functional fidelity). Observational only: timing and stats never
    /// depend on them.
    pub adaptive: Option<AdaptiveCounters>,
    /// Sweep accounting of a warm-started run (`None` for cold runs; see
    /// [`Accelerator::run_warm_f32`]).
    pub warm_start: Option<WarmStartCounters>,
    /// Per-resource utilization of this run (`None` with
    /// [`HeteroSvdConfig::observability`] off). Derived purely from
    /// `stats`, so it is identical live or replayed and never feeds back
    /// into the model.
    pub utilization: Option<crate::obs::UtilizationReport>,
}

/// A configured HeteroSVD accelerator instance.
///
/// Construction validates the placement and the Eq. (16) resource budgets;
/// [`Accelerator::run`] then factorizes matrices of the configured shape.
#[derive(Debug, Clone)]
pub struct Accelerator {
    config: HeteroSvdConfig,
    /// The immutable plan, shared through the process-wide cache:
    /// cloning an accelerator (one per serving replica) shares the plan
    /// instead of re-running placement.
    plan: Arc<PlanHandle>,
}

impl Accelerator {
    /// Builds an accelerator, planning its placement (or reusing a
    /// cached plan of the same design) and checking the target device's
    /// resource budgets (Eq. 16).
    ///
    /// # Errors
    ///
    /// Returns [`HeteroSvdError::Infeasible`] when the placement does not
    /// fit tile memory or the design exceeds a resource budget.
    pub fn new(config: HeteroSvdConfig) -> Result<Self, HeteroSvdError> {
        // Co-resident tenants are full-height column stripes: the array
        // must fit `co_residency` disjoint stripes of this design's
        // width, or the contention model would describe an impossible
        // packing.
        let capacity =
            crate::placement::tenant_capacity(config.device.geometry, config.engine_parallelism);
        if config.co_residency > capacity.max(1) {
            return Err(HeteroSvdError::Infeasible(
                aie_sim::SimError::ResourceExceeded {
                    resource: "tenant stripes",
                    used: config.co_residency,
                    budget: capacity,
                },
            ));
        }
        let plan = plan_cache::global().get_or_build(&config)?;
        config.device.budget.check(&plan.placement.usage())?;
        Ok(Accelerator { config, plan })
    }

    /// The validated configuration.
    pub fn config(&self) -> &HeteroSvdConfig {
        &self.config
    }

    /// The planned placement.
    pub fn placement(&self) -> &Placement {
        &self.plan.placement
    }

    /// The shared plan (placement, schedule, calibrated models).
    pub fn plan(&self) -> &Arc<PlanHandle> {
        &self.plan
    }

    /// Factorizes `a` (shape must match the configuration).
    ///
    /// # Errors
    ///
    /// * [`HeteroSvdError::InvalidConfig`] when `a`'s shape does not match.
    /// * [`HeteroSvdError::Numeric`] when `a` is non-finite or the
    ///   iteration fails to converge within `max_iterations` (adaptive
    ///   mode only).
    pub fn run(&self, a: &Matrix<f64>) -> Result<HeteroSvdOutput, HeteroSvdError> {
        // The f32 cast is already a fresh working copy — hand it
        // straight to the pipeline instead of cloning a second time.
        self.run_owned(a.cast::<f32>())
    }

    /// [`Accelerator::run`] for an `f32` input (the device's native type).
    pub fn run_f32(&self, a: &Matrix<f32>) -> Result<HeteroSvdOutput, HeteroSvdError> {
        self.run_owned(a.clone())
    }

    /// Core driver: consumes the working copy `b` directly (no second
    /// buffer), parallelizing functional rotations per the configured
    /// [`HeteroSvdConfig::functional_parallelism`].
    pub(crate) fn run_owned(&self, b: Matrix<f32>) -> Result<HeteroSvdOutput, HeteroSvdError> {
        let cfg = &self.config;
        if b.rows() != cfg.rows || b.cols() != cfg.cols {
            return Err(HeteroSvdError::InvalidConfig(format!(
                "matrix is {}x{} but the accelerator was configured for {}x{}",
                b.rows(),
                b.cols(),
                cfg.rows,
                cfg.cols
            )));
        }
        if cfg.fidelity == FidelityMode::Functional && !b.is_finite() {
            return Err(HeteroSvdError::Numeric(SvdError::NonFinite));
        }
        let workers = cfg.effective_functional_workers();
        if workers > 1 {
            with_pool(workers, |pool| self.run_inner(b, Some(pool)))
        } else {
            self.run_inner(b, None)
        }
    }

    /// Runs the full Algorithm 1 on the working copy `b`, optionally
    /// distributing each layer's rotations across `pool` (bit-identical
    /// to the serial path by construction).
    fn run_inner(
        &self,
        mut b: Matrix<f32>,
        pool: Option<&RotationPool>,
    ) -> Result<HeteroSvdOutput, HeteroSvdError> {
        let cfg = &self.config;
        let mut stats = SimStats::new();
        let mut timing = TimingBreakdown::default();

        // ---- First-iteration DDR loads (Eq. 12): blocks arrive serially.
        let ddr = DdrModel::new(cfg.calibration);
        let (ready, ddr_time, ddr_bytes) = replay::ddr_initial_ready(cfg);
        stats.ddr_bytes += ddr_bytes;
        stats.ddr_transfers += cfg.num_blocks();
        stats.ddr_busy += ddr_time;
        timing.ddr_time = ddr_time;

        // ---- Orthogonalization iterations, driven by the system module
        // (Fig. 2): it decides when to leave the orthogonalization stage.
        let mut pipe = OrthPipeline::new(cfg, &self.plan);
        pipe.set_block_ready(ready);
        pipe.set_norm_floor_sq(b.column_norm_floor_sq());
        if cfg.timing_replay {
            // The profile was probed from the same Eq. 12 state the
            // pipeline just got, so replay activates (and is exact).
            if let Some(profile) = self.plan.timing_profile(cfg) {
                pipe.set_replay_profile(profile);
            }
        }

        let mut system = crate::pl_modules::SystemModule::new(
            cfg.precision,
            cfg.max_iterations,
            cfg.fixed_iterations,
        );
        let mut history = Vec::new();
        let mut orth_end = timing.ddr_time;
        let mut last_convergence = 0.0;

        while system.phase() == crate::pl_modules::Phase::Orthogonalizing {
            pipe.set_rotation_threshold(system.rotation_threshold());
            let outcome = pipe.run_iteration_with(&mut b, pool);
            orth_end = outcome.end;
            timing.iteration_ends.push(outcome.end);
            history.push(SweepStats {
                sweep: system.iterations(),
                max_convergence: outcome.max_convergence,
                rotations: outcome.rotations,
            });
            last_convergence = outcome.max_convergence;
            system.iteration_done(outcome.max_convergence);
        }

        if cfg.fidelity == FidelityMode::Functional && system.hit_iteration_budget(last_convergence)
        {
            return Err(HeteroSvdError::Numeric(SvdError::NotConverged {
                sweeps: history.len(),
                off_diagonal: last_convergence,
            }));
        }

        let adaptive = pipe.adaptive_counters();
        let (orth_stats, trace) = pipe.into_parts();
        stats.merge(&orth_stats);
        stats.iterations = history.len();

        // ---- Normalization stage (Eq. 7).
        let norm = run_norm_stage(cfg, &self.plan.placement, &mut b, orth_end, &mut stats);
        timing.norm_time = norm.end.saturating_sub(orth_end);

        // ---- Results back to DDR. Co-resident tenants drain through the
        // same controller, so the store shares bandwidth like the loads.
        let result_bytes = cfg.rows * cfg.cols * 4 + cfg.cols * 4;
        let store = ddr.contended_burst_time(result_bytes, cfg.co_residency);
        stats.ddr_bytes += result_bytes;
        stats.ddr_transfers += 1;
        stats.ddr_busy += store;
        timing.task_time = norm.end + store;
        stats.elapsed = timing.task_time;

        let sigma = if cfg.fidelity == FidelityMode::Functional {
            norm.sigma
        } else {
            vec![0.0; cfg.cols]
        };

        let utilization = cfg
            .observability
            .then(|| crate::obs::UtilizationReport::from_stats(&stats, self.resource_counts()));

        Ok(HeteroSvdOutput {
            result: SvdResult {
                u: b,
                sigma,
                v: None,
                sweeps: history.len(),
                history,
            },
            stats,
            timing,
            usage: self.plan.placement.usage(),
            trace,
            adaptive,
            warm_start: None,
            utilization,
        })
    }

    /// Warm-started factorization: seeds the iteration from a cached
    /// right basis `v_prev` (typically recovered from this client's
    /// previous solve). The host forms `B = A·V_prev` in `f64` (PS-side
    /// preprocessing — the accelerator's streamed columns are those of
    /// `B`), the normal Algorithm 1 pipeline runs on `B`, and because
    /// `V_prev` is orthogonal the resulting `U` and `Σ` are those of
    /// `A`. When `A` is close to the basis's source matrix, `B`'s
    /// columns are already nearly orthogonal and the system module
    /// leaves the orthogonalization stage after one or two iterations —
    /// the whole point of the warm start. The output's
    /// [`SvdResult::v`] is the composed `V_prev·V_B` (recovered from
    /// `B`), and [`HeteroSvdOutput::warm_start`] carries the sweep
    /// accounting.
    ///
    /// # Errors
    ///
    /// * [`HeteroSvdError::InvalidConfig`] unless
    ///   [`HeteroSvdConfig::incremental`] is set, the fidelity is
    ///   functional, and `v_prev` is square with side `cols`.
    /// * Whatever [`Accelerator::run_f32`] returns for `B`.
    pub fn run_warm_f32(
        &self,
        a: &Matrix<f32>,
        v_prev: &Matrix<f32>,
    ) -> Result<HeteroSvdOutput, HeteroSvdError> {
        let cfg = &self.config;
        if !cfg.incremental {
            return Err(HeteroSvdError::InvalidConfig(
                "warm-started runs require the incremental knob".into(),
            ));
        }
        if cfg.fidelity != FidelityMode::Functional {
            return Err(HeteroSvdError::InvalidConfig(
                "warm-started runs require functional fidelity".into(),
            ));
        }
        if v_prev.rows() != cfg.cols || v_prev.cols() != cfg.cols {
            return Err(HeteroSvdError::InvalidConfig(format!(
                "warm-start basis must be {0}x{0}, got {1}x{2}",
                cfg.cols,
                v_prev.rows(),
                v_prev.cols()
            )));
        }
        // A cached basis carries zero columns where `recover_v` gated a
        // noise-floor σ; seeding with them would annihilate any update
        // component outside the previous numerical row space.
        // `warm_seed` completes the basis to a full rotation and forms
        // `B = A·V_seed` in f64, structurally — O(m·n·r) for r live
        // columns — so the host-side preprocessing stays cheap next to
        // the solve it seeds.
        let (b, v_seed) =
            svd_kernels::incremental::warm_seed(a, v_prev).map_err(HeteroSvdError::Numeric)?;
        let mut out = self.run_owned(b.clone())?;
        let v_b = out.result.recover_v(&b).map_err(HeteroSvdError::Numeric)?;
        let v = v_seed.matmul(&v_b).map_err(HeteroSvdError::Numeric)?;
        out.result.v = Some(v);
        out.warm_start = Some(WarmStartCounters {
            basis_cols: v_prev.cols(),
            warm_iterations: out.result.sweeps,
            cold_budget: cfg.fixed_iterations.unwrap_or(cfg.max_iterations),
        });
        Ok(out)
    }

    /// How many instances of each profiled resource class this design
    /// instantiates. AIE cores are the orth cores only — matching the
    /// `orth_busy` counter the utilization is computed from — and the
    /// DMA count covers per-(layer, slot) channels plus each layer's
    /// wraparound and stream-switch backbone, mirroring
    /// [`crate::orth_pipeline::OrthPipeline`]'s timeline layout.
    fn resource_counts(&self) -> crate::obs::ResourceCounts {
        let cfg = &self.config;
        let k = cfg.engine_parallelism;
        let layers = self.plan.placement.num_layers();
        let plio = self.plan.plio_plan;
        crate::obs::ResourceCounts {
            plio_ports: plio.orth_in + plio.orth_out + plio.norm,
            aie_cores: layers * k,
            dma_channels: layers.max(1) * k + 2 * layers.max(1),
            ddr_controllers: 1,
        }
    }

    /// Factorizes a batch of distinct matrices on the process-wide
    /// [`batch_pool`] (persistent bounded workers instead of one OS
    /// thread per matrix). The batch's *system time* follows Eq. (14) —
    /// `⌈B / P_task⌉ · t_task` — or its §IV-C overlapped variant when
    /// [`HeteroSvdConfig::cross_batch_pipelining`] is set; it is
    /// returned alongside the outputs.
    ///
    /// # Errors
    ///
    /// Returns the first error any task produced. A panicking worker
    /// is contained and surfaces as [`HeteroSvdError::WorkerPanicked`]
    /// rather than unwinding through the caller.
    pub fn run_many(
        &self,
        matrices: &[Matrix<f64>],
    ) -> Result<(Vec<HeteroSvdOutput>, TimePs), HeteroSvdError> {
        self.run_many_f32(matrices.iter().map(|a| a.cast::<f32>()).collect())
    }

    /// [`Accelerator::run_many`] taking owned `f32` matrices (the
    /// device's native type): callers that already hold `f32` data —
    /// the serving path casts once at admission — hand it over without
    /// any clone or re-cast.
    ///
    /// # Errors
    ///
    /// As [`Accelerator::run_many`].
    pub fn run_many_f32(
        &self,
        matrices: Vec<Matrix<f32>>,
    ) -> Result<(Vec<HeteroSvdOutput>, TimePs), HeteroSvdError> {
        if matrices.is_empty() {
            return Err(HeteroSvdError::InvalidConfig(
                "batch must contain at least one matrix".into(),
            ));
        }
        let num_tasks = matrices.len();
        let tasks = matrices
            .into_iter()
            .map(|b| {
                let acc = self.clone();
                Box::new(move || acc.run_owned(b)) as Box<_>
            })
            .collect();
        let outputs = batch_pool::global().run_batch(tasks)?;
        let slowest = outputs
            .iter()
            .max_by_key(|o| o.timing.task_time)
            .expect("batch is non-empty");
        let sys = slowest.timing.system_time_with(
            num_tasks,
            self.config.task_parallelism,
            self.config.cross_batch_pipelining,
        );
        Ok((outputs, sys))
    }

    /// The movement/DMA analysis of one block-pair pass under this
    /// accelerator's ordering, dataflow, and physical placement rows
    /// (the Fig. 3 analysis specialized to the planned design).
    pub fn movement_report(&self) -> svd_orderings::movement::MovementReport {
        let placement = &self.plan.placement;
        svd_orderings::movement::analyze_with_rows(
            self.config.ordering,
            self.config.dataflow,
            self.config.engine_parallelism,
            |layer| placement.row_of_layer(layer.min(placement.num_layers() - 1)),
        )
    }

    /// Simulates a batch of `num_tasks` identical tasks: one task is
    /// simulated, then the system time follows Eq. (14)
    /// (`⌈num_tasks/P_task⌉ · t_task` — the `P_task` pipelines are
    /// independent replicas), or its §IV-C overlapped variant when
    /// [`HeteroSvdConfig::cross_batch_pipelining`] is set.
    ///
    /// Returns the single-task output plus the batch system time.
    pub fn run_batch(
        &self,
        a: &Matrix<f64>,
        num_tasks: usize,
    ) -> Result<(HeteroSvdOutput, TimePs), HeteroSvdError> {
        if num_tasks == 0 {
            return Err(HeteroSvdError::InvalidConfig(
                "batch must contain at least one task".into(),
            ));
        }
        let out = self.run(a)?;
        let sys = out.timing.system_time_with(
            num_tasks,
            self.config.task_parallelism,
            self.config.cross_batch_pipelining,
        );
        Ok((out, sys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svd_kernels::jacobi::{hestenes_jacobi, JacobiOptions};
    use svd_kernels::verify;

    fn sample(n: usize) -> Matrix<f64> {
        Matrix::from_fn(n, n, |r, c| {
            ((r * 41 + c * 17 + 5) % 23) as f64 / 5.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
        })
    }

    fn accel(n: usize, p_eng: usize) -> Accelerator {
        Accelerator::new(
            HeteroSvdConfig::builder(n, n)
                .engine_parallelism(p_eng)
                .pl_freq_mhz(208.3)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn run_many_f32_matches_run_many() {
        // The zero-copy entry point must be behaviorally identical to the
        // f64 one (which casts and delegates to it).
        let acc = accel(16, 2);
        let mats: Vec<Matrix<f64>> = (0..3).map(|i| sample(16).scaled(1.0 + i as f64)).collect();
        let (by_ref, sys_ref) = acc.run_many(&mats).unwrap();
        let owned: Vec<Matrix<f32>> = mats.iter().map(|a| a.cast::<f32>()).collect();
        let (by_val, sys_val) = acc.run_many_f32(owned).unwrap();
        assert_eq!(sys_ref, sys_val);
        for (a, b) in by_ref.iter().zip(&by_val) {
            assert_eq!(a.result.u.as_slice(), b.result.u.as_slice());
            assert_eq!(a.timing, b.timing);
        }
        assert!(acc.run_many_f32(Vec::new()).is_err());
    }

    #[test]
    fn factorization_matches_golden_model() {
        let a = sample(32);
        let out = accel(32, 4).run(&a).unwrap();
        let golden = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let err = verify::singular_value_error(
            &golden.sorted_singular_values(),
            &out.result.sorted_singular_values(),
        );
        assert!(err < 1e-4, "singular value error {err}");
        assert!(verify::column_orthogonality_error(&out.result.u) < 1e-3);
    }

    #[test]
    fn reconstruction_error_is_small() {
        let a = sample(16);
        let out = accel(16, 2).run(&a).unwrap();
        assert!(out.result.reconstruction_error(&a.cast()) < 1e-4);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = sample(16);
        let err = accel(32, 4).run(&a).unwrap_err();
        assert!(matches!(err, HeteroSvdError::InvalidConfig(_)));
    }

    #[test]
    fn non_finite_input_rejected() {
        let mut a = sample(16);
        a[(3, 3)] = f64::NAN;
        let err = accel(16, 2).run(&a).unwrap_err();
        assert!(matches!(err, HeteroSvdError::Numeric(SvdError::NonFinite)));
    }

    #[test]
    fn timing_is_populated_and_ordered() {
        let a = sample(16);
        let out = accel(16, 2).run(&a).unwrap();
        assert!(out.timing.ddr_time > TimePs::ZERO);
        assert!(out.timing.iterations() >= 1);
        let ends = &out.timing.iteration_ends;
        assert!(ends.windows(2).all(|w| w[0] < w[1]));
        assert!(out.timing.task_time > *ends.last().unwrap());
        assert_eq!(out.stats.elapsed, out.timing.task_time);
    }

    #[test]
    fn fixed_iterations_run_exactly() {
        let a = sample(16);
        let acc = Accelerator::new(
            HeteroSvdConfig::builder(16, 16)
                .engine_parallelism(2)
                .fixed_iterations(6)
                .pl_freq_mhz(208.3)
                .build()
                .unwrap(),
        )
        .unwrap();
        let out = acc.run(&a).unwrap();
        assert_eq!(out.timing.iterations(), 6);
        assert_eq!(out.result.sweeps, 6);
    }

    #[test]
    fn timing_only_mode_skips_math() {
        let a = sample(16);
        let acc = Accelerator::new(
            HeteroSvdConfig::builder(16, 16)
                .engine_parallelism(2)
                .fidelity(FidelityMode::TimingOnly)
                .fixed_iterations(6)
                .pl_freq_mhz(208.3)
                .build()
                .unwrap(),
        )
        .unwrap();
        let out = acc.run(&a).unwrap();
        assert!(out.timing.task_time > TimePs::ZERO);
        assert!(out.result.sigma.iter().all(|&s| s == 0.0));
        assert_eq!(out.stats.orth_invocations, 6 * 28 * 6); // iters*passes*pairs
    }

    #[test]
    fn timing_only_matches_functional_timing() {
        // The clock must not depend on fidelity: identical schedules.
        let a = sample(16);
        let functional = accel(16, 2);
        let f_out = {
            let acc = Accelerator::new(
                HeteroSvdConfig::builder(16, 16)
                    .engine_parallelism(2)
                    .fixed_iterations(4)
                    .pl_freq_mhz(208.3)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            acc.run(&a).unwrap()
        };
        let t_out = {
            let acc = Accelerator::new(
                HeteroSvdConfig::builder(16, 16)
                    .engine_parallelism(2)
                    .fidelity(FidelityMode::TimingOnly)
                    .fixed_iterations(4)
                    .pl_freq_mhz(208.3)
                    .build()
                    .unwrap(),
            )
            .unwrap();
            acc.run(&a).unwrap()
        };
        let _ = functional;
        assert_eq!(f_out.timing.task_time, t_out.timing.task_time);
    }

    #[test]
    fn run_many_factorizes_each_matrix() {
        let acc = accel(16, 2);
        let mats: Vec<Matrix<f64>> = (0..4).map(|i| sample(16).scaled(1.0 + i as f64)).collect();
        let (outs, sys) = acc.run_many(&mats).unwrap();
        assert_eq!(outs.len(), 4);
        // Scaling the matrix scales sigma: outputs must differ accordingly.
        let s0 = outs[0].result.sorted_singular_values()[0];
        let s3 = outs[3].result.sorted_singular_values()[0];
        assert!((s3 / s0 - 4.0).abs() < 1e-3, "{s3} vs {s0}");
        // P_task = 1: four waves.
        assert_eq!(sys.0, outs[0].timing.task_time.0 * 4);
        assert!(acc.run_many(&[]).is_err());
    }

    fn warm_accel(n: usize, p_eng: usize) -> Accelerator {
        Accelerator::new(
            HeteroSvdConfig::builder(n, n)
                .engine_parallelism(p_eng)
                .incremental(true)
                .pl_freq_mhz(208.3)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn warm_start_reuses_basis_and_saves_iterations() {
        let a0 = sample(32);
        let acc = warm_accel(32, 4);
        let cold = acc.run(&a0).unwrap();
        let v_prev = cold.result.recover_v(&a0.cast()).unwrap();
        // Small perturbation of the same matrix: the cached basis still
        // nearly diagonalizes it, so the system module leaves the
        // orthogonalization stage early.
        let a1 = Matrix::from_fn(32, 32, |r, c| {
            a0[(r, c)] + ((r * 7 + c * 13) % 5) as f64 * 1e-4
        });
        let warm = acc.run_warm_f32(&a1.cast(), &v_prev).unwrap();
        let golden = hestenes_jacobi(&a1, &JacobiOptions::default()).unwrap();
        let err = verify::singular_value_error(
            &golden.sorted_singular_values(),
            &warm.result.sorted_singular_values(),
        );
        assert!(err < 1e-4, "singular value error {err}");
        assert!(
            warm.result.sweeps < cold.result.sweeps,
            "warm {} vs cold {}",
            warm.result.sweeps,
            cold.result.sweeps
        );
        let counters = warm.warm_start.expect("warm run carries counters");
        assert_eq!(counters.basis_cols, 32);
        assert_eq!(counters.warm_iterations, warm.result.sweeps);
        assert!(counters.iterations_saved() > 0);
        // The composed V_prev·V_B must itself be an orthogonal basis.
        let v = warm.result.v.as_ref().expect("warm run composes V");
        assert!(verify::column_orthogonality_error(v) < 1e-3);
        assert!(warm.result.reconstruction_error(&a1.cast()) < 1e-4);
    }

    #[test]
    fn warm_start_requires_knob_fidelity_and_shape() {
        let a: Matrix<f32> = sample(16).cast();
        let eye = Matrix::<f32>::from_fn(16, 16, |r, c| if r == c { 1.0 } else { 0.0 });
        // Knob off: rejected.
        assert!(matches!(
            accel(16, 2).run_warm_f32(&a, &eye),
            Err(HeteroSvdError::InvalidConfig(_))
        ));
        // Wrong basis shape: rejected.
        let small = Matrix::<f32>::from_fn(8, 8, |r, c| if r == c { 1.0 } else { 0.0 });
        assert!(matches!(
            warm_accel(16, 2).run_warm_f32(&a, &small),
            Err(HeteroSvdError::InvalidConfig(_))
        ));
        // Timing-only fidelity has no factors to warm-start from.
        let timing_only = Accelerator::new(
            HeteroSvdConfig::builder(16, 16)
                .engine_parallelism(2)
                .incremental(true)
                .fidelity(FidelityMode::TimingOnly)
                .fixed_iterations(4)
                .pl_freq_mhz(208.3)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            timing_only.run_warm_f32(&a, &eye),
            Err(HeteroSvdError::InvalidConfig(_))
        ));
    }

    #[test]
    fn incremental_knob_does_not_change_cold_runs() {
        // `incremental` is a routing knob: a plain decompose through an
        // incremental-enabled accelerator must stay bit-identical to
        // today's path.
        let a = sample(16);
        let off = accel(16, 2).run(&a).unwrap();
        let on = warm_accel(16, 2).run(&a).unwrap();
        assert_eq!(off.result.u.as_slice(), on.result.u.as_slice());
        assert_eq!(off.result.sigma, on.result.sigma);
        assert_eq!(off.timing, on.timing);
        assert!(on.warm_start.is_none());
    }

    #[test]
    fn movement_report_matches_configured_design() {
        let acc = accel(16, 2);
        let report = acc.movement_report();
        // Single band at k=2: the co-design's 2(k-1) = 2 DMAs per pass.
        assert_eq!(report.dma_transfers, 2);
    }

    #[test]
    fn batch_system_time_follows_eq14() {
        let a = sample(16);
        let acc = accel(16, 2);
        let (out, sys) = acc.run_batch(&a, 10).unwrap();
        // P_task = 1: 10 sequential waves.
        assert_eq!(sys.0, out.timing.task_time.0 * 10);
        assert!(acc.run_batch(&a, 0).is_err());
    }

    #[test]
    fn higher_engine_parallelism_reduces_latency() {
        let a = sample(64);
        let slow = accel(64, 2).run(&a).unwrap();
        let fast = accel(64, 8).run(&a).unwrap();
        assert!(
            fast.timing.task_time < slow.timing.task_time,
            "P_eng=8 {} vs P_eng=2 {}",
            fast.timing.task_time,
            slow.timing.task_time
        );
    }

    #[test]
    fn co_residency_slows_clock_but_not_math() {
        // Packing tenants shares PLIO interface groups and the DDR
        // controller: the modeled clock must slow down, while the
        // functional math (which never reads the knob) stays
        // bit-identical.
        let a = sample(16);
        let build = |co: usize| {
            Accelerator::new(
                HeteroSvdConfig::builder(16, 16)
                    .engine_parallelism(2)
                    .co_residency(co)
                    .fixed_iterations(4)
                    .pl_freq_mhz(208.3)
                    .build()
                    .unwrap(),
            )
            .unwrap()
        };
        let solo = build(1).run(&a).unwrap();
        let packed = build(4).run(&a).unwrap();
        assert!(
            packed.timing.task_time > solo.timing.task_time,
            "packed {} vs solo {}",
            packed.timing.task_time,
            solo.timing.task_time
        );
        assert_eq!(solo.result.u.as_slice(), packed.result.u.as_slice());
        assert_eq!(solo.result.sigma, packed.result.sigma);
    }

    #[test]
    fn co_residency_beyond_stripe_capacity_is_infeasible() {
        // P_eng=8 stripes are 3 bands x 9 = 27 columns wide: only one
        // fits the 50-column array, so two tenants are impossible.
        let cfg = HeteroSvdConfig::builder(64, 64)
            .engine_parallelism(8)
            .co_residency(2)
            .build()
            .unwrap();
        assert!(matches!(
            Accelerator::new(cfg),
            Err(HeteroSvdError::Infeasible(_))
        ));
        // P_eng=4 fits five.
        let ok = HeteroSvdConfig::builder(64, 64)
            .engine_parallelism(4)
            .co_residency(5)
            .build()
            .unwrap();
        assert!(Accelerator::new(ok).is_ok());
    }

    #[test]
    fn infeasible_designs_rejected_at_construction() {
        // P_eng=8 and P_task=26 blows the AIE budget.
        let cfg = HeteroSvdConfig::builder(64, 64)
            .engine_parallelism(8)
            .task_parallelism(26)
            .build()
            .unwrap();
        assert!(matches!(
            Accelerator::new(cfg),
            Err(HeteroSvdError::Infeasible(_))
        ));
    }
}
