//! The system module (Fig. 2): Algorithm 1's outer control flow as an
//! explicit state machine.
//!
//! "If the convergence rate is less than the user-specified precision,
//! the system module will terminate the orthogonalization stage and
//! proceed into the normalization stage" (§III-A).

use serde::{Deserialize, Serialize};

/// The controller's phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Phase {
    /// Streaming block pairs through the orth-AIEs (Algorithm 1 lines 2–17).
    #[default]
    Orthogonalizing,
    /// Streaming blocks through the norm-AIEs (lines 18–26).
    Normalizing,
    /// Results stored; completion signal released.
    Done,
}

/// The system module: convergence-driven stage control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemModule {
    precision: f64,
    max_iterations: usize,
    fixed_iterations: Option<usize>,
    phase: Phase,
    iterations: usize,
    /// Convergence rate of the most recent iteration (`None` before the
    /// first), feeding the adaptive engine's threshold schedule.
    last_convergence: Option<f64>,
}

impl SystemModule {
    /// Builds the controller.
    ///
    /// With `fixed_iterations` set, exactly that many orthogonalization
    /// iterations run regardless of convergence (the Table II/VI
    /// protocol); otherwise iteration continues until the Eq. (6) rate
    /// drops below `precision` or `max_iterations` is hit.
    pub fn new(precision: f64, max_iterations: usize, fixed_iterations: Option<usize>) -> Self {
        SystemModule {
            precision,
            max_iterations,
            fixed_iterations,
            phase: Phase::Orthogonalizing,
            iterations: 0,
            last_convergence: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Orthogonalization iterations completed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The rotation threshold the adaptive sweep engine should use for
    /// the *next* iteration, derived from the last reported convergence
    /// rate via [`svd_kernels::adaptive::sweep_threshold`]: the target
    /// precision until the iteration enters its quadratic tail, then the
    /// natural `prev²` contraction rate (floored at the precision).
    pub fn rotation_threshold(&self) -> f64 {
        svd_kernels::adaptive::sweep_threshold(self.last_convergence, self.precision)
    }

    /// Reports one completed orthogonalization iteration with its
    /// convergence rate; returns the phase to run next.
    ///
    /// # Panics
    ///
    /// Panics if called outside the orthogonalization phase.
    pub fn iteration_done(&mut self, convergence_rate: f64) -> Phase {
        assert_eq!(
            self.phase,
            Phase::Orthogonalizing,
            "iteration reported outside the orthogonalization phase"
        );
        self.iterations += 1;
        self.last_convergence = Some(convergence_rate);
        let done = match self.fixed_iterations {
            Some(n) => self.iterations >= n,
            None => convergence_rate < self.precision || self.iterations >= self.max_iterations,
        };
        if done {
            self.phase = Phase::Normalizing;
        }
        self.phase
    }

    /// `true` when the adaptive loop ended by budget rather than by
    /// reaching the precision (the caller decides whether that is an
    /// error; see [`crate::HeteroSvdError`]).
    pub fn hit_iteration_budget(&self, last_convergence: f64) -> bool {
        self.fixed_iterations.is_none()
            && self.iterations >= self.max_iterations
            && last_convergence >= self.precision
    }

    /// Reports the normalization stage complete; releases the completion
    /// signal.
    ///
    /// # Panics
    ///
    /// Panics if called outside the normalization phase.
    pub fn normalization_done(&mut self) -> Phase {
        assert_eq!(
            self.phase,
            Phase::Normalizing,
            "normalization reported outside the normalization phase"
        );
        self.phase = Phase::Done;
        self.phase
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_mode_stops_on_precision() {
        let mut sys = SystemModule::new(1e-6, 30, None);
        assert_eq!(sys.phase(), Phase::Orthogonalizing);
        assert_eq!(sys.iteration_done(0.5), Phase::Orthogonalizing);
        assert_eq!(sys.iteration_done(1e-3), Phase::Orthogonalizing);
        assert_eq!(sys.iteration_done(1e-7), Phase::Normalizing);
        assert_eq!(sys.iterations(), 3);
        assert!(!sys.hit_iteration_budget(1e-7));
        assert_eq!(sys.normalization_done(), Phase::Done);
    }

    #[test]
    fn fixed_mode_ignores_convergence() {
        let mut sys = SystemModule::new(1e-6, 30, Some(2));
        assert_eq!(sys.iteration_done(1e-12), Phase::Orthogonalizing);
        assert_eq!(sys.iteration_done(0.9), Phase::Normalizing);
        assert!(!sys.hit_iteration_budget(0.9));
    }

    #[test]
    fn rotation_threshold_follows_convergence() {
        let mut sys = SystemModule::new(1e-6, 30, None);
        // No iteration yet: only already-converged pairs may be gated.
        assert_eq!(sys.rotation_threshold(), 1e-6);
        // Pre-quadratic convergence keeps the gate at the precision.
        sys.iteration_done(0.5);
        assert_eq!(sys.rotation_threshold(), 1e-6);
        // Quadratic tail: the gate tracks prev².
        sys.iteration_done(1e-3);
        assert_eq!(sys.rotation_threshold(), 1e-6_f64.max(1e-3 * 1e-3));
    }

    #[test]
    fn budget_exhaustion_is_detectable() {
        let mut sys = SystemModule::new(1e-9, 2, None);
        sys.iteration_done(0.5);
        assert_eq!(sys.iteration_done(0.4), Phase::Normalizing);
        assert!(sys.hit_iteration_budget(0.4));
    }

    #[test]
    #[should_panic(expected = "outside the orthogonalization phase")]
    fn iteration_after_convergence_panics() {
        let mut sys = SystemModule::new(1e-3, 30, None);
        sys.iteration_done(1e-6);
        sys.iteration_done(1e-6);
    }

    #[test]
    #[should_panic(expected = "outside the normalization phase")]
    fn premature_normalization_panics() {
        let mut sys = SystemModule::new(1e-3, 30, None);
        sys.normalization_done();
    }
}
