//! The receiver module (Fig. 2): reunites packets from the array, sorts
//! them into columns, and deduces the convergence rate for the system
//! module (§III-A).

use crate::routing::{PacketHeader, PlioPlan};
use aie_sim::packet::Packet;

/// The receiver for one task pipeline.
#[derive(Debug, Clone, Default)]
pub struct Receiver {
    plan: PlioPlan,
    /// Largest Eq. (6) measure reported by the orth-AIEs this iteration.
    convergence: f64,
}

impl Receiver {
    /// A fresh receiver.
    pub fn new() -> Self {
        Receiver {
            plan: PlioPlan::standard(),
            convergence: 0.0,
        }
    }

    /// Decodes a returning packet into `(local column, data)` using the
    /// final layer's slot map, and folds the per-pass convergence
    /// measure into the iteration maximum.
    ///
    /// `slot_columns[slot]` is the pair held by the last layer's slot
    /// `slot`; the header's `side` selects which of the two columns the
    /// packet carries.
    pub fn accept(
        &mut self,
        packet: &Packet,
        slot_columns: &[(usize, usize)],
        convergence: f64,
    ) -> Option<(usize, Vec<f32>)> {
        let header = PacketHeader::decode(packet.id.0 as u32);
        let &(i, j) = slot_columns.get(header.slot as usize)?;
        let col = if header.side == 0 { i } else { j };
        let data: Vec<f32> = packet
            .payload
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        self.convergence = self.convergence.max(convergence);
        Some((col, data))
    }

    /// The output port a local column returns on (one per block, §III-C).
    pub fn output_port(&self, local_column: usize, k: usize) -> usize {
        self.plan.output_port_of_column(local_column, k)
    }

    /// The iteration's running convergence maximum (Eq. 6).
    pub fn convergence(&self) -> f64 {
        self.convergence
    }

    /// Resets the convergence accumulator for the next iteration.
    pub fn reset_convergence(&mut self) {
        self.convergence = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aie_sim::packet::StreamId;
    use bytes::Bytes;

    fn packet(slot: u8, side: u8, values: &[f32]) -> Packet {
        let header = PacketHeader {
            layer: 4,
            slot,
            side,
        };
        let payload: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        Packet::new(StreamId(header.encode() as u16), Bytes::from(payload))
    }

    #[test]
    fn decodes_column_and_tracks_convergence() {
        let mut rx = Receiver::new();
        let slots = vec![(0usize, 3usize), (1, 2)];
        let (col, data) = rx
            .accept(&packet(1, 1, &[1.5, -2.0]), &slots, 0.25)
            .unwrap();
        assert_eq!(col, 2);
        assert_eq!(data, vec![1.5, -2.0]);
        assert_eq!(rx.convergence(), 0.25);
        // A smaller measure does not lower the maximum.
        rx.accept(&packet(0, 0, &[0.0]), &slots, 0.01).unwrap();
        assert_eq!(rx.convergence(), 0.25);
        rx.reset_convergence();
        assert_eq!(rx.convergence(), 0.0);
    }

    #[test]
    fn unknown_slot_is_rejected() {
        let mut rx = Receiver::new();
        assert!(rx.accept(&packet(7, 0, &[1.0]), &[(0, 1)], 0.1).is_none());
    }

    #[test]
    fn output_ports_split_by_block() {
        let rx = Receiver::new();
        assert_eq!(rx.output_port(0, 4), 0);
        assert_eq!(rx.output_port(5, 4), 1);
    }

    #[test]
    fn sender_to_receiver_round_trip() {
        // Full packet loop: sender packetizes, receiver decodes; every
        // column returns identical.
        use crate::pl_modules::Sender;
        use crate::{HeteroSvdConfig, Placement};
        use svd_orderings::movement::OrderingKind;
        use svd_orderings::HardwareSchedule;

        let k = 3;
        let cfg = HeteroSvdConfig::builder(24, 24)
            .engine_parallelism(k)
            .build()
            .unwrap();
        let placement = Placement::plan(&cfg).unwrap();
        let schedule = HardwareSchedule::new(k, OrderingKind::ShiftingRing);
        let sender = Sender::new(&placement, &schedule).unwrap();

        let cols: Vec<Vec<f32>> = (0..2 * k)
            .map(|c| (0..24).map(|r| (c * 100 + r) as f32).collect())
            .collect();
        let packets = sender.packetize(&schedule, &cols);

        let mut rx = Receiver::new();
        let layer0 = &schedule.layers()[0].pairs_by_slot;
        for p in &packets {
            let (col, data) = rx.accept(&p.packet, layer0, 0.5).unwrap();
            assert_eq!(col, p.local_column);
            assert_eq!(data, cols[col]);
        }
        assert_eq!(rx.convergence(), 0.5);
    }
}
