//! The sender module (Fig. 2): packs columns into dynamic-forwarding
//! packets and programs the switch routes that steer each column to its
//! layer-0 orth-AIE slot (§III-A, §III-C).

use crate::placement::Placement;
use crate::routing::{PacketHeader, PlioPlan};
use aie_sim::packet::{Packet, StreamId};
use aie_sim::switch::SwitchFabric;
use aie_sim::SimError;
use bytes::Bytes;
use svd_orderings::HardwareSchedule;

/// A column packet queued on one PLIO port.
#[derive(Debug, Clone, PartialEq)]
pub struct OutboundPacket {
    /// Input PLIO port the packet streams through.
    pub port: usize,
    /// The packet (header-routed payload).
    pub packet: Packet,
    /// Local column index within the block pair.
    pub local_column: usize,
}

/// The sender: packetization and route programming for one task pipeline.
#[derive(Debug, Clone)]
pub struct Sender {
    plan: PlioPlan,
    fabric: SwitchFabric,
    k: usize,
}

impl Sender {
    /// Builds a sender for a placement, programming one dynamic-forwarding
    /// rule per local column: the stream ID (the packet header) routes to
    /// the layer-0 tile whose orth-AIE consumes that column.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] when a route's destination lies outside the
    /// array (cannot happen for a valid placement).
    pub fn new(placement: &Placement, schedule: &HardwareSchedule) -> Result<Self, SimError> {
        let plan = PlioPlan::standard();
        let k = placement.engine_parallelism();
        let mut fabric = SwitchFabric::new(placement.geometry());
        if let Some(layer0) = schedule.layers().first() {
            for (slot, &(i, j)) in layer0.pairs_by_slot.iter().enumerate() {
                let tile = placement.orth_tiles(0)[slot];
                for (side, col) in [(0u8, i), (1u8, j)] {
                    let header = PacketHeader {
                        layer: 0,
                        slot: slot as u8,
                        side,
                    };
                    let _ = col;
                    fabric.install_forwarding(StreamId(header.encode() as u16), tile)?;
                }
            }
        }
        Ok(Sender { plan, fabric, k })
    }

    /// Packs a block pair's columns into routed packets, one per column,
    /// spread over the four input ports per the §III-C rule (odd/even
    /// columns of each block on separate ports).
    ///
    /// # Panics
    ///
    /// Panics if `columns.len() != 2k`.
    pub fn packetize(
        &self,
        schedule: &HardwareSchedule,
        columns: &[Vec<f32>],
    ) -> Vec<OutboundPacket> {
        assert_eq!(columns.len(), 2 * self.k, "expected 2k columns");
        let layer0 = &schedule.layers()[0];
        let mut out = Vec::with_capacity(columns.len());
        for (slot, &(i, j)) in layer0.pairs_by_slot.iter().enumerate() {
            for (side, col) in [(0u8, i), (1u8, j)] {
                let header = PacketHeader {
                    layer: 0,
                    slot: slot as u8,
                    side,
                };
                let payload: Vec<u8> = columns[col].iter().flat_map(|v| v.to_le_bytes()).collect();
                out.push(OutboundPacket {
                    port: self.plan.input_port_of_column(col, self.k),
                    packet: Packet::new(StreamId(header.encode() as u16), Bytes::from(payload)),
                    local_column: col,
                });
            }
        }
        out
    }

    /// Resolves a packet's destination tile through the programmed
    /// switch-fabric routes (what the tile switches do in hardware).
    pub fn route(&self, packet: &Packet) -> Option<aie_sim::TileCoord> {
        self.fabric.forward(packet.id)
    }

    /// The programmed fabric (for inspection/tests).
    pub fn fabric(&self) -> &SwitchFabric {
        &self.fabric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeteroSvdConfig, Placement};
    use svd_orderings::movement::OrderingKind;

    fn setup(k: usize) -> (Placement, HardwareSchedule, Sender) {
        let cfg = HeteroSvdConfig::builder(32, 32)
            .engine_parallelism(k)
            .build()
            .unwrap();
        let placement = Placement::plan(&cfg).unwrap();
        let schedule = HardwareSchedule::new(k, OrderingKind::ShiftingRing);
        let sender = Sender::new(&placement, &schedule).unwrap();
        (placement, schedule, sender)
    }

    fn columns(k: usize, m: usize) -> Vec<Vec<f32>> {
        (0..2 * k)
            .map(|c| (0..m).map(|r| (c * m + r) as f32).collect())
            .collect()
    }

    #[test]
    fn every_column_gets_one_packet_on_a_valid_port() {
        let (_, schedule, sender) = setup(4);
        let packets = sender.packetize(&schedule, &columns(4, 32));
        assert_eq!(packets.len(), 8);
        let mut seen = std::collections::HashSet::new();
        for p in &packets {
            assert!(p.port < 4);
            assert!(seen.insert(p.local_column), "column packed twice");
            assert_eq!(p.packet.payload.len(), 32 * 4);
        }
    }

    #[test]
    fn routes_reach_the_layer0_orth_tiles() {
        // The dynamic-forwarding rule must deliver each packet to the
        // tile of the slot that consumes its column — end to end through
        // the simulated switch fabric.
        let (placement, schedule, sender) = setup(4);
        let packets = sender.packetize(&schedule, &columns(4, 32));
        let layer0 = &schedule.layers()[0];
        for p in &packets {
            let dest = sender.route(&p.packet).expect("route installed");
            // Find the slot that consumes this column.
            let slot = layer0
                .pairs_by_slot
                .iter()
                .position(|&(i, j)| i == p.local_column || j == p.local_column)
                .expect("column is consumed");
            assert_eq!(dest, placement.orth_tiles(0)[slot]);
        }
    }

    #[test]
    fn payload_round_trips_f32() {
        let (_, schedule, sender) = setup(2);
        let cols = columns(2, 8);
        let packets = sender.packetize(&schedule, &cols);
        for p in &packets {
            let decoded: Vec<f32> = p
                .packet
                .payload
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect();
            assert_eq!(decoded, cols[p.local_column]);
        }
    }

    #[test]
    #[should_panic(expected = "expected 2k columns")]
    fn wrong_column_count_panics() {
        let (_, schedule, sender) = setup(2);
        let _ = sender.packetize(&schedule, &columns(3, 8));
    }
}
