//! The PL-side modules of the HeteroSVD system (Fig. 2).
//!
//! The programmable logic hosts four modules around the AIE array:
//!
//! * [`DataArrangement`] — reads the matrix from DDR, splits it into
//!   blocks held in FIFOs, reorders blocks round-robin, and hands block
//!   pairs to the sender; receives updated blocks back.
//! * [`Sender`] — packs columns into dynamic-forwarding packets and
//!   programs the stream-switch routes that steer each column to its
//!   orth-AIE slot.
//! * [`Receiver`] — reunites packets coming back from the array, sorts
//!   them into columns, and reports the convergence measure.
//! * [`SystemModule`] — the control state machine: keeps the
//!   orthogonalization stage running until the Eq. (6) convergence rate
//!   passes the user precision, then switches to normalization and
//!   completion (Algorithm 1's outer control flow).
//!
//! These modules carry the *functional* data/control flow and validate
//! the routing against the simulated switch fabric; the cycle-level
//! timing of the same traffic lives in
//! [`crate::orth_pipeline`]/[`crate::norm_pipeline`].

mod data_arrangement;
mod receiver;
mod sender;
mod system;

pub use data_arrangement::{DataArrangement, FifoStats};
pub use receiver::Receiver;
pub use sender::Sender;
pub use system::{Phase, SystemModule};
