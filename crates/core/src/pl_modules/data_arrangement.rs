//! The data-arrangement module (Fig. 2): block FIFOs and round-robin
//! reordering between DDR, the sender, and the receiver.

use crate::HeteroSvdError;
use svd_kernels::block::{BlockPairSchedule, BlockPartition};
use svd_kernels::Matrix;

/// FIFO occupancy statistics, used to cross-check the URAM sizing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FifoStats {
    /// Bytes currently buffered across all block FIFOs.
    pub resident_bytes: usize,
    /// High-water mark of [`FifoStats::resident_bytes`].
    pub peak_bytes: usize,
    /// Block fetches served to the sender.
    pub fetches: usize,
    /// Updated blocks stored from the receiver.
    pub stores: usize,
}

/// The data-arrangement module: owns the working matrix in per-block
/// FIFOs and enumerates block pairs round-robin (§III-A).
///
/// # Example
///
/// ```
/// use heterosvd::pl_modules::DataArrangement;
/// use svd_kernels::Matrix;
///
/// # fn main() -> Result<(), heterosvd::HeteroSvdError> {
/// let a = Matrix::from_fn(8, 8, |r, c| (r + c) as f32);
/// let mut da = DataArrangement::new(a, 2)?;
/// let (u, v) = da.next_block_pair().expect("pairs remain");
/// let cols = da.fetch_pair(u, v);
/// assert_eq!(cols.len(), 4); // 2k columns
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DataArrangement {
    matrix: Matrix<f32>,
    partition: BlockPartition,
    schedule: Vec<(usize, usize)>,
    cursor: usize,
    /// Blocks currently checked out to the array (double-buffered in the
    /// FIFOs while in flight).
    in_flight: Vec<bool>,
    stats: FifoStats,
}

impl DataArrangement {
    /// Builds the module around a working matrix with `block_cols`-column
    /// blocks.
    ///
    /// # Errors
    ///
    /// Returns [`HeteroSvdError::Numeric`] when `block_cols` does not
    /// divide the column count.
    pub fn new(matrix: Matrix<f32>, block_cols: usize) -> Result<Self, HeteroSvdError> {
        let partition = BlockPartition::new(matrix.cols(), block_cols)?;
        let schedule: Vec<(usize, usize)> = BlockPairSchedule::round_robin(partition.num_blocks())
            .iter()
            .collect();
        let resident = matrix.rows() * matrix.cols() * 4;
        let in_flight = vec![false; partition.num_blocks()];
        Ok(DataArrangement {
            matrix,
            partition,
            schedule,
            cursor: 0,
            in_flight,
            stats: FifoStats {
                resident_bytes: resident,
                peak_bytes: resident,
                fetches: 0,
                stores: 0,
            },
        })
    }

    /// The next block pair in round-robin order; `None` when the
    /// iteration's pass list is exhausted (call [`Self::rewind`] for the
    /// next iteration).
    pub fn next_block_pair(&mut self) -> Option<(usize, usize)> {
        let pair = self.schedule.get(self.cursor).copied();
        if pair.is_some() {
            self.cursor += 1;
        }
        pair
    }

    /// Restarts the pass enumeration for the next iteration.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Fetches the columns of a block pair for the sender, marking both
    /// blocks in flight (their FIFO slots stay allocated — the paper's
    /// double buffering).
    ///
    /// # Panics
    ///
    /// Panics if either block is already in flight (the round-robin
    /// schedule guarantees disjointness within a round).
    pub fn fetch_pair(&mut self, u: usize, v: usize) -> Vec<Vec<f32>> {
        for b in [u, v] {
            assert!(!self.in_flight[b], "block {b} fetched twice");
            self.in_flight[b] = true;
        }
        self.stats.fetches += 2;
        let block_bytes = self.partition.block_cols * self.matrix.rows() * 4;
        self.stats.resident_bytes += 2 * block_bytes; // in-flight copies
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.resident_bytes);

        self.partition
            .pair_columns(u, v)
            .into_iter()
            .map(|c| self.matrix.col(c).to_vec())
            .collect()
    }

    /// Stores updated columns from the receiver back into the block
    /// FIFOs, releasing the in-flight copies.
    ///
    /// # Panics
    ///
    /// Panics if the column count mismatches the block pair or a block
    /// was not in flight.
    pub fn store_pair(&mut self, u: usize, v: usize, columns: Vec<Vec<f32>>) {
        let cols = self.partition.pair_columns(u, v);
        assert_eq!(columns.len(), cols.len(), "column count mismatch");
        for (global, data) in cols.into_iter().zip(columns) {
            assert_eq!(data.len(), self.matrix.rows(), "column length mismatch");
            self.matrix.col_mut(global).copy_from_slice(&data);
        }
        for b in [u, v] {
            assert!(self.in_flight[b], "block {b} stored without fetch");
            self.in_flight[b] = false;
        }
        self.stats.stores += 2;
        let block_bytes = self.partition.block_cols * self.matrix.rows() * 4;
        self.stats.resident_bytes -= 2 * block_bytes;
    }

    /// The working matrix (updated in place by stores).
    pub fn matrix(&self) -> &Matrix<f32> {
        &self.matrix
    }

    /// Consumes the module, returning the working matrix.
    pub fn into_matrix(self) -> Matrix<f32> {
        self.matrix
    }

    /// The block partition.
    pub fn partition(&self) -> BlockPartition {
        self.partition
    }

    /// FIFO occupancy statistics.
    pub fn stats(&self) -> FifoStats {
        self.stats
    }

    /// URAM blocks the peak FIFO occupancy requires (288 Kb blocks) —
    /// comparable against [`aie_sim::pl::PlModel::uram_blocks_per_task`].
    pub fn required_uram_blocks(&self) -> usize {
        self.stats.peak_bytes.div_ceil(aie_sim::pl::URAM_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(n: usize, k: usize) -> DataArrangement {
        let a = Matrix::from_fn(n, n, |r, c| (r * n + c) as f32);
        DataArrangement::new(a, k).unwrap()
    }

    #[test]
    fn enumerates_all_pairs_in_rounds() {
        let mut da = module(8, 2);
        let mut pairs = Vec::new();
        while let Some(p) = da.next_block_pair() {
            pairs.push(p);
        }
        assert_eq!(pairs.len(), 4 * 3 / 2);
        da.rewind();
        assert_eq!(da.next_block_pair(), Some(pairs[0]));
    }

    #[test]
    fn fetch_store_round_trip_preserves_data() {
        let mut da = module(8, 2);
        let before = da.matrix().clone();
        let cols = da.fetch_pair(0, 2);
        da.store_pair(0, 2, cols);
        assert_eq!(da.matrix(), &before);
    }

    #[test]
    fn stores_apply_updates() {
        let mut da = module(4, 2);
        let mut cols = da.fetch_pair(0, 1);
        for c in &mut cols {
            for x in c.iter_mut() {
                *x += 100.0;
            }
        }
        da.store_pair(0, 1, cols);
        assert_eq!(da.matrix()[(0, 0)], 100.0);
        assert_eq!(da.matrix()[(3, 3)], 115.0);
    }

    #[test]
    fn in_flight_double_buffering_raises_peak() {
        let mut da = module(8, 2);
        let base = da.stats().resident_bytes;
        let cols = da.fetch_pair(0, 1);
        assert!(da.stats().resident_bytes > base);
        da.store_pair(0, 1, cols);
        assert_eq!(da.stats().resident_bytes, base);
        assert!(da.stats().peak_bytes > base);
        assert_eq!(da.stats().fetches, 2);
        assert_eq!(da.stats().stores, 2);
    }

    #[test]
    #[should_panic(expected = "fetched twice")]
    fn double_fetch_panics() {
        let mut da = module(8, 2);
        let _ = da.fetch_pair(0, 1);
        let _ = da.fetch_pair(1, 2);
    }

    #[test]
    fn uram_requirement_matches_pl_model_class() {
        // The measured peak FIFO occupancy must not exceed the PL model's
        // provisioned URAM (which rounds up to 4-block cascades).
        let da = {
            let mut da = module(256, 8);
            let cols = da.fetch_pair(0, 1);
            da.store_pair(0, 1, cols);
            da
        };
        let provisioned = aie_sim::pl::PlModel::default().uram_blocks_per_task(256, 256);
        assert!(
            da.required_uram_blocks() <= provisioned,
            "measured {} URAM vs provisioned {}",
            da.required_uram_blocks(),
            provisioned
        );
    }

    #[test]
    fn invalid_blocking_rejected() {
        let a = Matrix::from_fn(6, 6, |_, _| 0.0_f32);
        assert!(DataArrangement::new(a, 4).is_err());
    }
}
