//! Per-component energy attribution for a simulated run.
//!
//! The paper reports energy efficiency as throughput per watt of board
//! power (Table III). This module decomposes a run's energy into its
//! architectural sources — static leakage, AIE compute, stream traffic,
//! DDR — so design decisions (e.g. the co-design's DMA reduction) can be
//! costed in joules, not just seconds.

use crate::accelerator::HeteroSvdOutput;
use aie_sim::calibration::PowerCalibration;
use serde::{Deserialize, Serialize};

/// Per-operation energy constants.
///
/// The dynamic constants are typical 7 nm-class values (tens of pJ per
/// fp32 vector op, single-digit pJ/byte for on-chip movement, tens of
/// pJ/byte at DDR); the static terms reuse the Table VI power fit so the
/// run-average power stays consistent with [`PowerCalibration`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Static power applied for the whole run (W).
    pub static_watts: f64,
    /// Energy per AIE-core busy second (J/s = W per busy core).
    pub watts_per_busy_core: f64,
    /// Energy per byte over a PLIO stream (J/byte).
    pub plio_joules_per_byte: f64,
    /// Energy per byte over inter-tile DMA (J/byte).
    pub dma_joules_per_byte: f64,
    /// Energy per byte to/from DDR (J/byte).
    pub ddr_joules_per_byte: f64,
}

impl EnergyModel {
    /// Defaults derived from the [`PowerCalibration`] fit plus typical
    /// per-byte movement energies.
    pub const DEFAULT: EnergyModel = EnergyModel {
        static_watts: PowerCalibration::DEFAULT.base_watts,
        watts_per_busy_core: 0.06,
        plio_joules_per_byte: 5.0e-12,
        dma_joules_per_byte: 10.0e-12,
        ddr_joules_per_byte: 50.0e-12,
    };
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::DEFAULT
    }
}

/// Energy of one run, by source.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Static/leakage energy over the run (J).
    pub static_j: f64,
    /// Orth/norm kernel compute energy (J).
    pub compute_j: f64,
    /// PLIO stream traffic energy (J).
    pub plio_j: f64,
    /// Inter-tile DMA traffic energy (J).
    pub dma_j: f64,
    /// DDR traffic energy (J).
    pub ddr_j: f64,
}

impl EnergyBreakdown {
    /// Total energy (J).
    pub fn total(&self) -> f64 {
        self.static_j + self.compute_j + self.plio_j + self.dma_j + self.ddr_j
    }

    /// Run-average power (W) over an elapsed time in seconds.
    pub fn average_watts(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            0.0
        } else {
            self.total() / elapsed_secs
        }
    }
}

impl HeteroSvdOutput {
    /// Attributes the run's energy to its architectural sources.
    pub fn energy_breakdown(&self, model: &EnergyModel) -> EnergyBreakdown {
        let elapsed = self.stats.elapsed.as_secs();
        EnergyBreakdown {
            static_j: model.static_watts * elapsed,
            compute_j: model.watts_per_busy_core * self.stats.orth_busy.as_secs(),
            plio_j: model.plio_joules_per_byte
                * (self.stats.plio_bytes_in + self.stats.plio_bytes_out) as f64,
            dma_j: model.dma_joules_per_byte * self.stats.dma_bytes as f64,
            ddr_j: model.ddr_joules_per_byte * self.stats.ddr_bytes as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Accelerator, FidelityMode, HeteroSvdConfig};
    use svd_kernels::Matrix;

    fn run(
        ordering: svd_orderings::movement::OrderingKind,
        dataflow: svd_orderings::movement::DataflowKind,
    ) -> HeteroSvdOutput {
        let cfg = HeteroSvdConfig::builder(64, 64)
            .engine_parallelism(4)
            .ordering(ordering)
            .dataflow(dataflow)
            .pl_freq_mhz(208.3)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(6)
            .build()
            .unwrap();
        Accelerator::new(cfg)
            .unwrap()
            .run(&Matrix::zeros(64, 64))
            .unwrap()
    }

    #[test]
    fn breakdown_sums_and_average_power_is_plausible() {
        use svd_orderings::movement::{DataflowKind, OrderingKind};
        let out = run(OrderingKind::ShiftingRing, DataflowKind::Relocated);
        let e = out.energy_breakdown(&EnergyModel::default());
        let parts = e.static_j + e.compute_j + e.plio_j + e.dma_j + e.ddr_j;
        assert!((e.total() - parts).abs() < 1e-15);
        let avg = e.average_watts(out.stats.elapsed.as_secs());
        // Dominated by static power for one small pipeline; must land in
        // the board's plausible envelope (Table III header: < 39 W board).
        assert!((15.0..60.0).contains(&avg), "average power {avg} W");
        assert!(e.static_j > 0.0 && e.compute_j > 0.0 && e.dma_j > 0.0);
    }

    #[test]
    fn codesign_saves_dma_energy() {
        use svd_orderings::movement::{DataflowKind, OrderingKind};
        let naive = run(OrderingKind::Ring, DataflowKind::NaiveMemory)
            .energy_breakdown(&EnergyModel::default());
        let codesign = run(OrderingKind::ShiftingRing, DataflowKind::Relocated)
            .energy_breakdown(&EnergyModel::default());
        assert!(codesign.dma_j < naive.dma_j);
        assert!(codesign.total() <= naive.total());
    }

    #[test]
    fn zero_elapsed_yields_zero_average_power() {
        let e = EnergyBreakdown::default();
        assert_eq!(e.average_watts(0.0), 0.0);
        assert_eq!(e.total(), 0.0);
    }
}
