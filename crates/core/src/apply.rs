//! Modeled rank-r apply pipeline: `y = U_r·Σ_r·V_rᵀ·x` on the AIE array.
//!
//! Decompose-once / apply-constantly serving streams each inference
//! request through a three-kernel dataflow chain (the Mapping-Multiple-
//! LSTM-Models dataflow: KernelV → KernelS → KernelU), charged with the
//! same Eq. 8–14 timing decomposition the decompose path uses:
//!
//! * **PLIO-in** (Eq. 8) — the n-element input vector `x` streams PL→AIE
//!   through one PLIO port.
//! * **V stage** — `t = V_rᵀ·x`: r dot products of length n, spread
//!   round-robin over the `P_eng` engines (⌈r/P_eng⌉ waves of one
//!   streaming MAC pass each).
//! * **S stage** — `s = Σ_r·t`: one element-wise scaling pass over the r
//!   coefficients.
//! * **U stage** — `y = Σⱼ sⱼ·uⱼ`: r AXPYs of length m over the same
//!   `P_eng` engines, plus `min(P_eng, r) − 1` combining passes to
//!   reduce the per-engine partial outputs.
//! * **PLIO-out** (Eq. 8) — the m-element result `y` streams AIE→PL.
//!
//! Batches of applies share the array via the Eq. 14 system time
//! `⌈B / P_task⌉ · t_apply`. Like decompose timing, the apply timeline
//! is a pure function of `(m, n, r, P_eng, calibration, PL frequency)`,
//! so a [`ApplyProfileCache`] memoizes one probe per shape and replays
//! it for every steady-state apply — O(1) instead of O(r·(m + n)).

use crate::HeteroSvdError;
use aie_sim::calibration::Calibration;
use aie_sim::kernel::KernelCostModel;
use aie_sim::plio::PlioModel;
use aie_sim::stats::SimStats;
use aie_sim::time::{Frequency, TimePs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// The shape of one rank-r apply: factors of an m×n matrix truncated to
/// rank r.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ApplyShape {
    /// Rows m of the decomposed matrix (length of the output `y`).
    pub rows: usize,
    /// Columns n of the decomposed matrix (length of the input `x`).
    pub cols: usize,
    /// Retained rank r.
    pub rank: usize,
}

impl ApplyShape {
    /// Validates and builds a shape.
    ///
    /// # Errors
    ///
    /// [`HeteroSvdError::InvalidConfig`] when a dimension is zero or the
    /// rank exceeds `min(rows, cols)`.
    pub fn new(rows: usize, cols: usize, rank: usize) -> Result<Self, HeteroSvdError> {
        if rows == 0 || cols == 0 {
            return Err(HeteroSvdError::InvalidConfig(format!(
                "apply shape {rows}x{cols} has a zero dimension"
            )));
        }
        if rank == 0 || rank > rows.min(cols) {
            return Err(HeteroSvdError::InvalidConfig(format!(
                "apply rank {rank} outside 1..={}",
                rows.min(cols)
            )));
        }
        Ok(ApplyShape { rows, cols, rank })
    }
}

/// Per-stage timing of one rank-r apply, in the order the dataflow chain
/// visits the stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplyTiming {
    /// Eq. 8 PLIO transfer of the n-element input vector.
    pub plio_in: TimePs,
    /// KernelV: `t = V_rᵀ·x` (⌈r/P_eng⌉ MAC-pass waves of length n).
    pub v_stage: TimePs,
    /// KernelS: `s = Σ_r·t` (one MAC pass of length r).
    pub s_stage: TimePs,
    /// KernelU: `y = Σ sⱼ·uⱼ` plus the partial-output reduction.
    pub u_stage: TimePs,
    /// Eq. 8 PLIO transfer of the m-element output vector.
    pub plio_out: TimePs,
    /// End-to-end apply latency (sum of the stages).
    pub total: TimePs,
}

impl ApplyTiming {
    /// Eq. 14 system time of a batch of `batch` applies sharing the
    /// array at task parallelism `p_task`: `⌈B / P_task⌉ · total`.
    pub fn system_time(&self, batch: usize, p_task: usize) -> TimePs {
        let waves = batch.div_ceil(p_task.max(1)) as u64;
        TimePs(self.total.0 * waves)
    }
}

/// One probed apply profile: the timing plus the resource-charging
/// stats of a single apply at its shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApplyProfile {
    /// The shape this profile was probed at.
    pub shape: ApplyShape,
    /// Per-stage timing.
    pub timing: ApplyTiming,
    /// Resource counters of one apply (PLIO bytes/busy, engine busy,
    /// MAC-pass invocations) for utilization reporting.
    pub stats: SimStats,
}

/// Analytic cost model of the apply dataflow chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApplyModel {
    plio: PlioModel,
    kernels: KernelCostModel,
    p_eng: usize,
    p_task: usize,
    pl_freq: Frequency,
    calibration: Calibration,
}

impl ApplyModel {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// [`HeteroSvdError::InvalidConfig`] when a parallelism knob is zero.
    pub fn new(
        p_eng: usize,
        p_task: usize,
        pl_freq: Frequency,
        calibration: Calibration,
    ) -> Result<Self, HeteroSvdError> {
        if p_eng == 0 || p_task == 0 {
            return Err(HeteroSvdError::InvalidConfig(
                "apply model requires P_eng >= 1 and P_task >= 1".into(),
            ));
        }
        Ok(ApplyModel {
            plio: PlioModel::new(calibration, pl_freq),
            kernels: KernelCostModel::new(calibration),
            p_eng,
            p_task,
            pl_freq,
            calibration,
        })
    }

    /// Builds the model from the knobs of an accelerator config (the
    /// serving path shares one calibration between decompose and apply).
    pub fn from_config(config: &crate::HeteroSvdConfig) -> Result<Self, HeteroSvdError> {
        ApplyModel::new(
            config.engine_parallelism,
            config.task_parallelism,
            config.pl_freq,
            config.calibration,
        )
    }

    /// Engine parallelism the stages are spread over.
    pub fn engine_parallelism(&self) -> usize {
        self.p_eng
    }

    /// Task parallelism of the Eq. 14 batch system time.
    pub fn task_parallelism(&self) -> usize {
        self.p_task
    }

    /// Simulates one apply at `shape`, charging every stage.
    ///
    /// The result is a pure function of `(shape, P_eng, calibration,
    /// PL frequency)`; [`ApplyProfileCache`] relies on this determinism
    /// to make replays exact.
    pub fn simulate(&self, shape: ApplyShape) -> ApplyProfile {
        let ApplyShape { rows, cols, rank } = shape;
        let elem = std::mem::size_of::<f32>();

        // Eq. 8 PLIO charges: one packetized stream per vector.
        let plio_in = self.plio.transfer_time(cols * elem, 1);
        let plio_out = self.plio.transfer_time(rows * elem, 1);

        // KernelV: r dot products of length n in ⌈r/P_eng⌉ waves.
        let v_waves = rank.div_ceil(self.p_eng) as u64;
        let v_pass = self.kernels.mac_pass_time(cols);
        let v_stage = TimePs(v_waves * v_pass.0);

        // KernelS: one scaling pass over the r coefficients.
        let s_stage = self.kernels.mac_pass_time(rank);

        // KernelU: r AXPYs of length m in ⌈r/P_eng⌉ waves, then the
        // per-engine partial outputs combine in min(P_eng, r) − 1
        // sequential passes.
        let u_waves = rank.div_ceil(self.p_eng) as u64;
        let u_pass = self.kernels.mac_pass_time(rows);
        let reduce_passes = (self.p_eng.min(rank) - 1) as u64;
        let u_stage = TimePs((u_waves + reduce_passes) * u_pass.0);

        let total = TimePs(plio_in.0 + v_stage.0 + s_stage.0 + u_stage.0 + plio_out.0);
        let timing = ApplyTiming {
            plio_in,
            v_stage,
            s_stage,
            u_stage,
            plio_out,
            total,
        };

        // Per-engine busy time sums the MAC passes each engine actually
        // runs; invocation counts feed the ops column of the
        // utilization report.
        let mac_invocations = rank as u64 + 1 + rank as u64 + reduce_passes;
        let engine_busy = rank as u64 * v_pass.0
            + self.kernels.mac_pass_time(rank).0
            + (rank as u64 + reduce_passes) * u_pass.0;
        let stats = SimStats {
            elapsed: total,
            plio_bytes_in: cols * elem,
            plio_bytes_out: rows * elem,
            plio_transfers: 2,
            plio_busy: TimePs(plio_in.0 + plio_out.0),
            norm_invocations: mac_invocations as usize,
            orth_busy: TimePs(engine_busy),
            iterations: 1,
            ..SimStats::default()
        };
        ApplyProfile {
            shape,
            timing,
            stats,
        }
    }
}

/// Cache key: the apply shape plus a fingerprint of every model knob the
/// timing depends on (`P_eng`, PL frequency, calibration). `P_task` is
/// deliberately excluded — it only scales the Eq. 14 batch system time,
/// not the per-apply profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ApplyProfileKey {
    shape: ApplyShape,
    fingerprint: u64,
}

impl ApplyProfileKey {
    /// Derives the profile key of `model` at `shape`.
    pub fn of(model: &ApplyModel, shape: ApplyShape) -> Self {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        model.p_eng.hash(&mut h);
        model.pl_freq.mhz().to_bits().hash(&mut h);
        serde_json::to_string(&model.calibration)
            .expect("calibration serializes infallibly")
            .hash(&mut h);
        ApplyProfileKey {
            shape,
            fingerprint: h.finish(),
        }
    }
}

struct ProfileInner {
    profiles: HashMap<ApplyProfileKey, (Arc<ApplyProfile>, u64)>,
    probes: HashMap<ApplyProfileKey, u64>,
    clock: u64,
}

/// LRU cache of apply profiles keyed per `(n, r, P_eng, calibration)`,
/// mirroring [`crate::plan_cache::PlanCache`]: probe once, replay ever
/// after.
pub struct ApplyProfileCache {
    capacity: usize,
    inner: Mutex<ProfileInner>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    evictions: std::sync::atomic::AtomicU64,
}

impl ApplyProfileCache {
    /// Creates a cache retaining at most `capacity` profiles.
    pub fn new(capacity: usize) -> Self {
        ApplyProfileCache {
            capacity: capacity.max(1),
            inner: Mutex::new(ProfileInner {
                profiles: HashMap::new(),
                probes: HashMap::new(),
                clock: 0,
            }),
            hits: std::sync::atomic::AtomicU64::new(0),
            misses: std::sync::atomic::AtomicU64::new(0),
            evictions: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Returns the cached profile for `model` at `shape`, probing (one
    /// live simulation) on first use. Replays are exact: the probe is a
    /// pure function of the key.
    pub fn get_or_probe(&self, model: &ApplyModel, shape: ApplyShape) -> Arc<ApplyProfile> {
        use std::sync::atomic::Ordering;
        let key = ApplyProfileKey::of(model, shape);
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some((profile, last_use)) = inner.profiles.get_mut(&key) {
            *last_use = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(profile);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let profile = Arc::new(model.simulate(shape));
        *inner.probes.entry(key).or_insert(0) += 1;
        if inner.profiles.len() >= self.capacity {
            if let Some(oldest) = inner
                .profiles
                .iter()
                .min_by_key(|(_, (_, last_use))| *last_use)
                .map(|(k, _)| *k)
            {
                inner.profiles.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.profiles.insert(key, (Arc::clone(&profile), stamp));
        profile
    }

    /// How many profiles are resident.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().profiles.len()
    }

    /// `true` when no profiles are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many live probes `model`-at-`shape` has triggered (0 = never
    /// probed, 1 = probed once and replayed since).
    pub fn probes_for(&self, model: &ApplyModel, shape: ApplyShape) -> u64 {
        let key = ApplyProfileKey::of(model, shape);
        *self.inner.lock().unwrap().probes.get(&key).unwrap_or(&0)
    }

    /// Counter snapshot for the metrics path.
    pub fn stats(&self) -> crate::plan_cache::CacheStats {
        use std::sync::atomic::Ordering;
        crate::plan_cache::CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident: self.len() as u64,
            capacity: self.capacity as u64,
        }
    }
}

/// Maximum apply profiles the process-wide cache retains. Each profile
/// is a few hundred bytes, so the cache comfortably covers every
/// (model, rank) pair a serving mix sweeps.
pub const GLOBAL_APPLY_PROFILE_CAPACITY: usize = 64;

/// The process-wide apply-profile cache the serving path uses.
pub fn global_profiles() -> &'static ApplyProfileCache {
    static GLOBAL: OnceLock<ApplyProfileCache> = OnceLock::new();
    GLOBAL.get_or_init(|| ApplyProfileCache::new(GLOBAL_APPLY_PROFILE_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(p_eng: usize) -> ApplyModel {
        ApplyModel::new(p_eng, 4, Frequency::from_mhz(208.3), Calibration::DEFAULT).unwrap()
    }

    fn shape(rows: usize, cols: usize, rank: usize) -> ApplyShape {
        ApplyShape::new(rows, cols, rank).unwrap()
    }

    #[test]
    fn shape_validation_rejects_degenerate_shapes() {
        assert!(ApplyShape::new(0, 4, 1).is_err());
        assert!(ApplyShape::new(4, 0, 1).is_err());
        assert!(ApplyShape::new(4, 4, 0).is_err());
        assert!(ApplyShape::new(8, 4, 5).is_err());
        assert!(ApplyShape::new(8, 4, 4).is_ok());
    }

    #[test]
    fn model_rejects_zero_parallelism() {
        assert!(ApplyModel::new(0, 4, Frequency::from_mhz(208.3), Calibration::DEFAULT).is_err());
        assert!(ApplyModel::new(2, 0, Frequency::from_mhz(208.3), Calibration::DEFAULT).is_err());
    }

    #[test]
    fn timing_sums_stages_and_charges_both_plio_directions() {
        let m = model(2);
        let p = m.simulate(shape(256, 128, 16));
        let t = p.timing;
        assert_eq!(
            t.total.0,
            t.plio_in.0 + t.v_stage.0 + t.s_stage.0 + t.u_stage.0 + t.plio_out.0
        );
        // Output vector (256 floats) outweighs the input (128 floats).
        assert!(t.plio_out > t.plio_in);
        assert_eq!(p.stats.plio_transfers, 2);
        assert_eq!(p.stats.plio_bytes_in, 128 * 4);
        assert_eq!(p.stats.plio_bytes_out, 256 * 4);
        assert_eq!(p.stats.elapsed, t.total);
        assert_eq!(p.stats.iterations, 1);
    }

    #[test]
    fn latency_grows_with_rank_and_shrinks_with_engines() {
        let m2 = model(2);
        let low = m2.simulate(shape(256, 256, 4)).timing.total;
        let high = m2.simulate(shape(256, 256, 32)).timing.total;
        assert!(high > low, "rank 32 {high:?} <= rank 4 {low:?}");

        let m8 = model(8);
        let wide = m8.simulate(shape(256, 256, 32)).timing.total;
        assert!(wide < high, "P_eng 8 {wide:?} >= P_eng 2 {high:?}");
    }

    #[test]
    fn system_time_follows_eq14() {
        let m = model(2);
        let t = m.simulate(shape(128, 64, 8)).timing;
        assert_eq!(t.system_time(1, 4), t.total);
        assert_eq!(t.system_time(4, 4), t.total);
        assert_eq!(t.system_time(5, 4).0, 2 * t.total.0);
        assert_eq!(t.system_time(8, 2).0, 4 * t.total.0);
    }

    #[test]
    fn simulate_is_deterministic() {
        let m = model(4);
        let s = shape(512, 256, 24);
        assert_eq!(m.simulate(s), m.simulate(s));
    }

    #[test]
    fn profile_cache_probes_once_and_replays_exactly() {
        let cache = ApplyProfileCache::new(8);
        let m = model(2);
        let s = shape(256, 128, 16);
        let first = cache.get_or_probe(&m, s);
        let second = cache.get_or_probe(&m, s);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.probes_for(&m, s), 1);
        // Replay invariance: the cached profile equals a live simulation.
        assert_eq!(*first, m.simulate(s));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn profile_cache_splits_on_engine_count_but_not_task_count() {
        let cache = ApplyProfileCache::new(8);
        let s = shape(128, 64, 8);
        let a = cache.get_or_probe(&model(2), s);
        let b = cache.get_or_probe(&model(4), s);
        assert!(!Arc::ptr_eq(&a, &b));
        // Same P_eng, different P_task: shared profile.
        let c = cache.get_or_probe(
            &ApplyModel::new(2, 9, Frequency::from_mhz(208.3), Calibration::DEFAULT).unwrap(),
            s,
        );
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn profile_cache_evicts_lru() {
        let cache = ApplyProfileCache::new(2);
        let m = model(2);
        cache.get_or_probe(&m, shape(64, 32, 4));
        cache.get_or_probe(&m, shape(128, 64, 8));
        cache.get_or_probe(&m, shape(64, 32, 4)); // touch first
        cache.get_or_probe(&m, shape(256, 128, 16)); // evicts second
        assert_eq!(cache.len(), 2);
        cache.get_or_probe(&m, shape(128, 64, 8));
        assert_eq!(cache.probes_for(&m, shape(128, 64, 8)), 2);
        assert_eq!(cache.probes_for(&m, shape(64, 32, 4)), 1);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn utilization_report_accepts_apply_stats() {
        use crate::obs::{ResourceCounts, UtilizationReport};
        let m = model(2);
        let p = m.simulate(shape(256, 128, 16));
        let report = UtilizationReport::from_stats(
            &p.stats,
            ResourceCounts {
                plio_ports: 2,
                aie_cores: 2,
                dma_channels: 0,
                ddr_controllers: 0,
            },
        );
        // PLIO and the engines saw work; DMA/DDR safely report zero.
        let by_name = |name: &str| {
            report
                .resources
                .iter()
                .find(|r| r.kind.name() == name)
                .unwrap()
                .busy_fraction
        };
        assert!(by_name("plio") > 0.0);
        assert!(by_name("aie_core") > 0.0);
        assert_eq!(by_name("dma"), 0.0);
        assert_eq!(by_name("ddr"), 0.0);
    }
}
