//! One-call SVD for arbitrary shapes.
//!
//! [`svd`] wraps the accelerator with the shape adaptation a downstream
//! user expects: wide matrices are transposed (the one-sided method
//! needs `rows ≥ cols`), and dimensions are zero-padded to a valid
//! block multiple — zero rows/columns leave the nonzero singular values
//! untouched, and the padded zero columns are gated by the numerical
//! noise floor. The returned factors are trimmed back to the input
//! shape.

use crate::accelerator::{Accelerator, HeteroSvdOutput};
use crate::config::HeteroSvdConfig;
use crate::HeteroSvdError;
use svd_kernels::Matrix;

/// Result of [`svd`]: trimmed factors plus the raw accelerator output.
#[derive(Debug, Clone, PartialEq)]
pub struct SvdOutput {
    /// Singular values of the input, sorted descending, `min(m, n)` of
    /// them.
    pub singular_values: Vec<f32>,
    /// Left singular vectors of the *original* orientation (`m × min(m,n)`,
    /// columns ordered like `singular_values`). For wide inputs these are
    /// recovered from the transposed factorization's right side.
    pub u: Matrix<f32>,
    /// `true` when the input was factorized as its transpose.
    pub transposed: bool,
    /// The raw accelerator output (padded shape).
    pub raw: HeteroSvdOutput,
}

/// Factorizes any finite matrix on the simulated accelerator.
///
/// `p_eng` is adapted downward when it does not divide the (padded)
/// column count.
///
/// # Example
///
/// ```
/// use heterosvd::svd::svd;
/// use svd_kernels::Matrix;
///
/// # fn main() -> Result<(), heterosvd::HeteroSvdError> {
/// // A wide 2x3 matrix: handled by transposition + padding.
/// let a = Matrix::from_column_major(2, 3, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0])
///     .map_err(heterosvd::HeteroSvdError::Numeric)?;
/// let out = svd(&a, 4, 1e-6)?;
/// assert_eq!(out.singular_values.len(), 2);
/// assert!(out.singular_values[0] > out.singular_values[1]);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates accelerator errors ([`HeteroSvdError`]); rejects empty and
/// non-finite inputs.
pub fn svd(a: &Matrix<f64>, p_eng: usize, precision: f64) -> Result<SvdOutput, HeteroSvdError> {
    if a.is_empty() {
        return Err(HeteroSvdError::InvalidConfig(
            "matrix must be non-empty".into(),
        ));
    }
    let transposed = a.rows() < a.cols();
    let work = if transposed { a.transpose() } else { a.clone() };
    let min_dim = work.cols();

    // Choose the largest engine parallelism <= p_eng that minimizes
    // padding, then pad to a valid shape.
    let orig_cols = work.cols();
    let chosen = (1..=p_eng.clamp(1, crate::config::MAX_ENGINE_PARALLELISM))
        .rev()
        .min_by_key(|k| {
            let padded = orig_cols.div_ceil(2 * k) * 2 * k;
            (padded - orig_cols, p_eng.abs_diff(*k))
        })
        .unwrap_or(1);
    let padded_cols = orig_cols.div_ceil(2 * chosen) * 2 * chosen;
    let padded_rows = work.rows().max(padded_cols);
    let padded = if padded_cols != orig_cols || padded_rows != work.rows() {
        Matrix::from_fn(padded_rows, padded_cols, |r, c| {
            if r < work.rows() && c < work.cols() {
                work[(r, c)]
            } else {
                0.0
            }
        })
    } else {
        work
    };

    let config = HeteroSvdConfig::builder(padded.rows(), padded.cols())
        .engine_parallelism(chosen)
        .precision(precision)
        .build()?;
    let raw = Accelerator::new(config)?.run(&padded)?;

    // Trim: keep the min(m, n) largest singular values and their columns,
    // restricted to the original row count.
    let order = raw.result.descending_order();
    let kept: Vec<usize> = order.into_iter().take(min_dim).collect();
    let singular_values: Vec<f32> = kept.iter().map(|&j| raw.result.sigma[j]).collect();
    let out_rows = if transposed { a.cols() } else { a.rows() };
    let u = Matrix::from_fn(out_rows, kept.len(), |r, c| raw.result.u[(r, kept[c])]);

    Ok(SvdOutput {
        singular_values,
        u,
        transposed,
        raw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use svd_kernels::{hestenes_jacobi, verify, JacobiOptions};

    fn golden_svs(a: &Matrix<f64>) -> Vec<f64> {
        let work = if a.rows() < a.cols() {
            a.transpose()
        } else {
            a.clone()
        };
        hestenes_jacobi(&work, &JacobiOptions::default())
            .unwrap()
            .sorted_singular_values()
    }

    #[test]
    fn square_awkward_size_is_padded() {
        // 30 columns with p_eng 4: pads to 32.
        let a = Matrix::from_fn(30, 30, |r, c| {
            ((r * 13 + c * 7) % 9) as f64 - 4.0 + if r == c { 3.0 } else { 0.0 }
        });
        let out = svd(&a, 4, 1e-6).unwrap();
        assert_eq!(out.singular_values.len(), 30);
        assert!(!out.transposed);
        let golden = golden_svs(&a);
        let err = verify::singular_value_error(&golden[..30], &out.singular_values);
        assert!(err < 1e-4, "error {err}");
    }

    #[test]
    fn wide_matrix_is_transposed() {
        let a = Matrix::from_fn(8, 24, |r, c| ((r * 5 + c * 11) % 7) as f64 - 3.0);
        let out = svd(&a, 4, 1e-6).unwrap();
        assert!(out.transposed);
        assert_eq!(out.singular_values.len(), 8);
        assert_eq!(out.u.rows(), 24); // left vectors of A^T
        let golden = golden_svs(&a);
        let err = verify::singular_value_error(&golden[..8], &out.singular_values);
        assert!(err < 1e-4, "error {err}");
    }

    #[test]
    fn values_are_sorted_descending() {
        let a = Matrix::from_fn(20, 10, |r, c| ((r + 2 * c) % 5) as f64 + 0.1 * r as f64);
        let out = svd(&a, 8, 1e-6).unwrap();
        for w in out.singular_values.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let one = Matrix::from_fn(1, 1, |_, _| 3.0);
        let out = svd(&one, 4, 1e-6).unwrap();
        assert!((out.singular_values[0] - 3.0).abs() < 1e-5);

        let empty: Matrix<f64> = Matrix::zeros(0, 0);
        assert!(svd(&empty, 4, 1e-6).is_err());
    }
}
