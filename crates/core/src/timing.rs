//! Timing breakdown of one accelerator run, mirroring the decomposition of
//! the paper's performance model (Eq. 8–14).

use aie_sim::time::TimePs;
use serde::{Deserialize, Serialize};

/// Where the simulated time went.
///
/// # Example
///
/// ```
/// use heterosvd::TimingBreakdown;
/// use aie_sim::TimePs;
///
/// let timing = TimingBreakdown {
///     task_time: TimePs::from_secs(1e-3),
///     ..Default::default()
/// };
/// // Eq. 14: 100 tasks on 9 pipelines take ceil(100/9) = 12 waves.
/// assert_eq!(timing.system_time(100, 9), TimePs::from_secs(12e-3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// First-iteration serialized DDR load time (`t_DDR`, Eq. 12).
    pub ddr_time: TimePs,
    /// End time of each outer iteration (cumulative clock).
    pub iteration_ends: Vec<TimePs>,
    /// Duration of the normalization stage (`t_norm`).
    pub norm_time: TimePs,
    /// Total single-task latency (`t_task`, Eq. 14).
    pub task_time: TimePs,
}

impl TimingBreakdown {
    /// Average duration of one orthogonalization iteration (`t_iter`),
    /// excluding the initial DDR load.
    pub fn avg_iteration(&self) -> TimePs {
        if self.iteration_ends.is_empty() {
            return TimePs::ZERO;
        }
        let first_start = self.ddr_time;
        let last_end = *self.iteration_ends.last().unwrap();
        let total = last_end.saturating_sub(first_start);
        TimePs(total.0 / self.iteration_ends.len() as u64)
    }

    /// Number of orthogonalization iterations executed.
    pub fn iterations(&self) -> usize {
        self.iteration_ends.len()
    }

    /// System-level time for `num_tasks` independent tasks on `p_task`
    /// parallel pipelines: `⌈num_tasks / P_task⌉ · t_task` (Eq. 14).
    pub fn system_time(&self, num_tasks: usize, p_task: usize) -> TimePs {
        let waves = num_tasks.div_ceil(p_task.max(1)) as u64;
        TimePs(self.task_time.0 * waves)
    }

    /// [`TimingBreakdown::system_time`] with §IV-C cross-batch
    /// pipelining: while a wave computes, the PL passes (prefetches) the
    /// next wave's blocks from DDR, so every wave after the first hides
    /// its serialized load and costs only `t_task − t_DDR`:
    ///
    /// `t_sys = t_task + (⌈num_tasks / P_task⌉ − 1) · (t_task − t_DDR)`
    ///
    /// With `t_DDR = 0` (or one wave) this degenerates to Eq. 14.
    pub fn system_time_pipelined(&self, num_tasks: usize, p_task: usize) -> TimePs {
        if num_tasks == 0 {
            return TimePs::ZERO;
        }
        let waves = num_tasks.div_ceil(p_task.max(1)) as u64;
        let overlap = self.ddr_time.min(self.task_time);
        TimePs(self.task_time.0 + (waves - 1) * (self.task_time.0 - overlap.0))
    }

    /// Dispatches between [`TimingBreakdown::system_time`] (Eq. 14
    /// exact, the default) and [`TimingBreakdown::system_time_pipelined`]
    /// per the [`crate::HeteroSvdConfig::cross_batch_pipelining`] knob.
    pub fn system_time_with(
        &self,
        num_tasks: usize,
        p_task: usize,
        cross_batch_pipelining: bool,
    ) -> TimePs {
        if cross_batch_pipelining {
            self.system_time_pipelined(num_tasks, p_task)
        } else {
            self.system_time(num_tasks, p_task)
        }
    }

    /// Throughput in tasks per second for a batch of `num_tasks` tasks.
    pub fn throughput(&self, num_tasks: usize, p_task: usize) -> f64 {
        let t = self.system_time(num_tasks, p_task).as_secs();
        if t == 0.0 {
            0.0
        } else {
            num_tasks as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimingBreakdown {
        TimingBreakdown {
            ddr_time: TimePs(100),
            iteration_ends: vec![TimePs(600), TimePs(1100), TimePs(1600)],
            norm_time: TimePs(200),
            task_time: TimePs(1800),
        }
    }

    #[test]
    fn avg_iteration_spans_loads_to_last_end() {
        let t = sample();
        assert_eq!(t.avg_iteration(), TimePs(500));
        assert_eq!(t.iterations(), 3);
        assert_eq!(TimingBreakdown::default().avg_iteration(), TimePs::ZERO);
    }

    #[test]
    fn system_time_follows_eq14() {
        let t = sample();
        assert_eq!(t.system_time(1, 1), TimePs(1800));
        assert_eq!(t.system_time(100, 9), TimePs(1800 * 12)); // ceil(100/9) = 12
        assert_eq!(t.system_time(9, 9), TimePs(1800));
    }

    #[test]
    fn pipelined_system_time_hides_ddr_after_first_wave() {
        let t = sample(); // task 1800, ddr 100
                          // One wave: both modes agree with a single task time.
        assert_eq!(t.system_time_pipelined(1, 1), TimePs(1800));
        assert_eq!(
            t.system_time_with(1, 1, true),
            t.system_time_with(1, 1, false)
        );
        // Ten waves: Eq. 14 pays 10 full tasks; pipelined hides 9 loads.
        assert_eq!(t.system_time(10, 1), TimePs(18_000));
        assert_eq!(t.system_time_pipelined(10, 1), TimePs(1800 + 9 * 1700));
        // The knob selects between them.
        assert_eq!(t.system_time_with(10, 1, false), TimePs(18_000));
        assert_eq!(t.system_time_with(10, 1, true), TimePs(17_100));
        // Degenerate inputs stay sane.
        assert_eq!(t.system_time_pipelined(0, 1), TimePs::ZERO);
        let no_ddr = TimingBreakdown {
            task_time: TimePs(500),
            ..Default::default()
        };
        assert_eq!(no_ddr.system_time_pipelined(4, 2), no_ddr.system_time(4, 2));
    }

    #[test]
    fn throughput_counts_tasks_per_second() {
        let t = TimingBreakdown {
            task_time: TimePs::from_secs(0.001),
            ..Default::default()
        };
        // 10 tasks, 10 pipelines: one wave of 1 ms -> 10_000 tasks/s.
        assert!((t.throughput(10, 10) - 10_000.0).abs() < 1e-6);
        assert_eq!(TimingBreakdown::default().throughput(5, 1), 0.0);
    }
}
