//! PLIO assignment and the dynamic-forwarding routing rule (§III-C).
//!
//! Each task pipeline uses six PLIOs (Table I): four PL→AIE streams feed
//! the orthogonalization stage — odd and even columns of the two blocks of
//! a block pair travel on separate ports so the tile switches can
//! dynamically forward each packet to its slot — and two AIE→PL streams
//! return results. The normalization stage reuses two of them ("for the
//! norm-AIE, we only use two PLIOs", §III-C).

use serde::{Deserialize, Serialize};

/// PLIO ports per task pipeline (Table I: `6k` for `P_task = k`).
pub const PLIO_PER_TASK: usize = 6;
/// PL → AIE ports per task for the orth stage.
pub const ORTH_IN_PORTS: usize = 4;
/// AIE → PL ports per task for the orth stage.
pub const ORTH_OUT_PORTS: usize = 2;
/// Ports per task for the norm stage (reused from the orth set).
pub const NORM_PORTS: usize = 2;

/// The PLIO plan of one task pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlioPlan {
    /// Number of PL→AIE orth input ports.
    pub orth_in: usize,
    /// Number of AIE→PL orth output ports.
    pub orth_out: usize,
    /// Number of ports used by the norm stage.
    pub norm: usize,
}

impl PlioPlan {
    /// The standard HeteroSVD plan.
    pub fn standard() -> Self {
        PlioPlan {
            orth_in: ORTH_IN_PORTS,
            orth_out: ORTH_OUT_PORTS,
            norm: NORM_PORTS,
        }
    }

    /// Total distinct PLIO ports (norm reuses orth ports).
    pub fn total_ports(&self) -> usize {
        self.orth_in + self.orth_out
    }

    /// The input port carrying local column `col` of a block pair:
    /// odd and even columns of each block use different ports
    /// ("odd and even columns are sourced from different blocks within the
    /// block pair, utilizing four PLIOs", §III-C). Columns `0..k` belong
    /// to the first block, `k..2k` to the second.
    pub fn input_port_of_column(&self, col: usize, k: usize) -> usize {
        let block = if k == 0 { 0 } else { usize::from(col >= k) };
        let parity = col % 2;
        (block * 2 + parity) % self.orth_in.max(1)
    }

    /// The output port carrying local column `col` (one port per block).
    pub fn output_port_of_column(&self, col: usize, k: usize) -> usize {
        let block = if k == 0 { 0 } else { usize::from(col >= k) };
        block % self.orth_out.max(1)
    }
}

/// The physical PLIO lane block of one co-resident tenant: tenant
/// `slot` owns the contiguous lanes
/// `[slot · PLIO_PER_TASK, (slot + 1) · PLIO_PER_TASK)`, so co-scheduled
/// pipelines never share a physical lane — they contend only for the
/// shared interface-group bandwidth (modeled by the PLIO throttle), not
/// for ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantLanes {
    /// The tenant's stripe slot (0-based, left to right).
    pub slot: usize,
    /// First physical lane of the tenant's block.
    pub base: usize,
}

impl TenantLanes {
    /// The lane block of stripe `slot`.
    pub fn for_slot(slot: usize) -> Self {
        TenantLanes {
            slot,
            base: slot * PLIO_PER_TASK,
        }
    }

    /// Physical lane carrying this tenant's input column `col`
    /// (the logical [`PlioPlan`] port offset into the tenant's block).
    pub fn input_lane(&self, plan: &PlioPlan, col: usize, k: usize) -> usize {
        self.base + plan.input_port_of_column(col, k)
    }

    /// Physical lane carrying this tenant's output column `col`
    /// (output ports sit after the input ports within the block).
    pub fn output_lane(&self, plan: &PlioPlan, col: usize, k: usize) -> usize {
        self.base + ORTH_IN_PORTS + plan.output_port_of_column(col, k)
    }

    /// The tenant's physical lane range.
    pub fn lanes(&self) -> std::ops::Range<usize> {
        self.base..self.base + PLIO_PER_TASK
    }
}

/// Assigns disjoint physical lane blocks to `tenants` co-resident
/// pipelines, checking the device PLIO budget.
///
/// # Errors
///
/// Returns [`aie_sim::SimError::ResourceExceeded`] (resource `"PLIO"`)
/// when `tenants · PLIO_PER_TASK` exceeds `plio_budget`.
pub fn assign_tenant_lanes(
    tenants: usize,
    plio_budget: usize,
) -> Result<Vec<TenantLanes>, aie_sim::SimError> {
    let used = tenants * PLIO_PER_TASK;
    if used > plio_budget {
        return Err(aie_sim::SimError::ResourceExceeded {
            resource: "PLIO",
            used,
            budget: plio_budget,
        });
    }
    Ok((0..tenants).map(TenantLanes::for_slot).collect())
}

/// A dynamic-forwarding packet header: the 32-bit word prepended to each
/// column packet, carrying the destination slot for the tile switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketHeader {
    /// Destination orth-layer.
    pub layer: u16,
    /// Destination slot within the layer.
    pub slot: u8,
    /// Which side of the slot's pair this column is (0 = left, 1 = right).
    pub side: u8,
}

impl PacketHeader {
    /// Encodes the header into its 32-bit wire format.
    pub fn encode(self) -> u32 {
        (self.layer as u32) << 16 | (self.slot as u32) << 8 | self.side as u32
    }

    /// Decodes a 32-bit wire header.
    pub fn decode(word: u32) -> Self {
        PacketHeader {
            layer: (word >> 16) as u16,
            slot: (word >> 8) as u8,
            side: word as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_totals_match_table1() {
        let p = PlioPlan::standard();
        assert_eq!(p.total_ports(), PLIO_PER_TASK);
        assert_eq!(p.orth_in, 4);
        assert_eq!(p.orth_out, 2);
        assert_eq!(p.norm, 2);
    }

    #[test]
    fn columns_spread_over_four_input_ports() {
        let p = PlioPlan::standard();
        let k = 4;
        let mut used = std::collections::HashSet::new();
        for col in 0..2 * k {
            let port = p.input_port_of_column(col, k);
            assert!(port < p.orth_in);
            used.insert(port);
        }
        assert_eq!(used.len(), 4, "all four ports should carry traffic");
        // Blocks map to disjoint port pairs.
        for col in 0..k {
            assert!(p.input_port_of_column(col, k) < 2);
            assert!(p.input_port_of_column(col + k, k) >= 2);
        }
    }

    #[test]
    fn output_ports_split_by_block() {
        let p = PlioPlan::standard();
        let k = 3;
        for col in 0..k {
            assert_eq!(p.output_port_of_column(col, k), 0);
            assert_eq!(p.output_port_of_column(col + k, k), 1);
        }
    }

    #[test]
    fn header_round_trips() {
        let h = PacketHeader {
            layer: 14,
            slot: 7,
            side: 1,
        };
        assert_eq!(PacketHeader::decode(h.encode()), h);
        let h0 = PacketHeader {
            layer: 0,
            slot: 0,
            side: 0,
        };
        assert_eq!(h0.encode(), 0);
        assert_eq!(PacketHeader::decode(0), h0);
    }

    #[test]
    fn tenant_lane_blocks_are_disjoint_and_budgeted() {
        let lanes = assign_tenant_lanes(5, 156).unwrap();
        assert_eq!(lanes.len(), 5);
        for (i, a) in lanes.iter().enumerate() {
            assert_eq!(a.slot, i);
            assert_eq!(a.lanes().len(), PLIO_PER_TASK);
            for b in &lanes[i + 1..] {
                assert!(a.lanes().end <= b.lanes().start || b.lanes().end <= a.lanes().start);
            }
        }
        // Every logical port of every tenant maps into its own block.
        let plan = PlioPlan::standard();
        let k = 4;
        for t in &lanes {
            for col in 0..2 * k {
                let input = t.input_lane(&plan, col, k);
                let output = t.output_lane(&plan, col, k);
                assert!(t.lanes().contains(&input));
                assert!(t.lanes().contains(&output));
                assert_ne!(input, output);
            }
        }
        // 27 tenants would need 162 lanes > the VCK190's 156.
        assert!(assign_tenant_lanes(27, 156).is_err());
        assert!(assign_tenant_lanes(26, 156).is_ok());
    }

    #[test]
    fn degenerate_k_zero_does_not_panic() {
        let p = PlioPlan::standard();
        assert!(p.input_port_of_column(0, 0) < 4);
        assert_eq!(p.output_port_of_column(0, 0), 0);
    }
}
