use aie_sim::SimError;
use std::error::Error;
use std::fmt;
use svd_kernels::SvdError;

/// Errors produced by the HeteroSVD accelerator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HeteroSvdError {
    /// An invalid configuration value was supplied.
    InvalidConfig(String),
    /// The design does not fit the platform (placement or Eq. 16 budgets).
    Infeasible(SimError),
    /// A numerical error from the SVD kernels.
    Numeric(SvdError),
}

impl fmt::Display for HeteroSvdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeteroSvdError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HeteroSvdError::Infeasible(e) => write!(f, "infeasible design: {e}"),
            HeteroSvdError::Numeric(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl Error for HeteroSvdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HeteroSvdError::Infeasible(e) => Some(e),
            HeteroSvdError::Numeric(e) => Some(e),
            HeteroSvdError::InvalidConfig(_) => None,
        }
    }
}

impl From<SimError> for HeteroSvdError {
    fn from(e: SimError) -> Self {
        HeteroSvdError::Infeasible(e)
    }
}

impl From<SvdError> for HeteroSvdError {
    fn from(e: SvdError) -> Self {
        HeteroSvdError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = HeteroSvdError::from(SimError::ResourceExceeded {
            resource: "AIE",
            used: 500,
            budget: 400,
        });
        assert!(e.to_string().contains("infeasible"));
        assert!(e.source().is_some());

        let e = HeteroSvdError::InvalidConfig("p_eng must be >= 1".into());
        assert!(e.source().is_none());
        assert!(e.to_string().contains("p_eng"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HeteroSvdError>();
    }
}
