use aie_sim::SimError;
use std::error::Error;
use std::fmt;
use svd_kernels::SvdError;

/// Errors produced by the HeteroSVD accelerator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HeteroSvdError {
    /// An invalid configuration value was supplied.
    InvalidConfig(String),
    /// The design does not fit the platform (placement or Eq. 16 budgets).
    Infeasible(SimError),
    /// A numerical error from the SVD kernels.
    Numeric(SvdError),
    /// A batch worker thread panicked; the payload's message is carried
    /// so the batch fails as an `Err` instead of tearing down the caller.
    WorkerPanicked(String),
}

impl HeteroSvdError {
    /// Converts a caught panic payload (from `join` or `catch_unwind`)
    /// into [`HeteroSvdError::WorkerPanicked`], extracting the message
    /// when the payload is a string.
    pub fn worker_panicked(payload: &(dyn std::any::Any + Send)) -> Self {
        let msg = payload
            .downcast_ref::<&'static str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string());
        HeteroSvdError::WorkerPanicked(msg)
    }
}

impl fmt::Display for HeteroSvdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeteroSvdError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HeteroSvdError::Infeasible(e) => write!(f, "infeasible design: {e}"),
            HeteroSvdError::Numeric(e) => write!(f, "numerical failure: {e}"),
            HeteroSvdError::WorkerPanicked(msg) => write!(f, "batch worker panicked: {msg}"),
        }
    }
}

impl Error for HeteroSvdError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HeteroSvdError::Infeasible(e) => Some(e),
            HeteroSvdError::Numeric(e) => Some(e),
            HeteroSvdError::InvalidConfig(_) | HeteroSvdError::WorkerPanicked(_) => None,
        }
    }
}

impl From<SimError> for HeteroSvdError {
    fn from(e: SimError) -> Self {
        HeteroSvdError::Infeasible(e)
    }
}

impl From<SvdError> for HeteroSvdError {
    fn from(e: SvdError) -> Self {
        HeteroSvdError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = HeteroSvdError::from(SimError::ResourceExceeded {
            resource: "AIE",
            used: 500,
            budget: 400,
        });
        assert!(e.to_string().contains("infeasible"));
        assert!(e.source().is_some());

        let e = HeteroSvdError::InvalidConfig("p_eng must be >= 1".into());
        assert!(e.source().is_none());
        assert!(e.to_string().contains("p_eng"));
    }

    #[test]
    fn panic_payloads_become_worker_panicked() {
        let static_str: Box<dyn std::any::Any + Send> = Box::new("boom");
        let owned: Box<dyn std::any::Any + Send> = Box::new("expected 4 columns".to_string());
        let opaque: Box<dyn std::any::Any + Send> = Box::new(42_u32);

        let e = HeteroSvdError::worker_panicked(static_str.as_ref());
        assert_eq!(e, HeteroSvdError::WorkerPanicked("boom".into()));
        assert!(e.to_string().contains("panicked: boom"));
        assert!(e.source().is_none());

        let e = HeteroSvdError::worker_panicked(owned.as_ref());
        assert_eq!(
            e,
            HeteroSvdError::WorkerPanicked("expected 4 columns".into())
        );

        let e = HeteroSvdError::worker_panicked(opaque.as_ref());
        assert_eq!(
            e,
            HeteroSvdError::WorkerPanicked("opaque panic payload".into())
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HeteroSvdError>();
    }
}
