//! End-to-end observability: span journal and resource utilization.
//!
//! The serving stack and the simulator both produce timing signals —
//! wall-clock on the host side (admission, linger, replica execution)
//! and modeled [`TimePs`] on the simulated side (Eq. 8–14). This module
//! gives both a common, low-overhead sink:
//!
//! * [`SpanJournal`] — a fixed-capacity ring of [`SpanEvent`]s plus
//!   running per-stage aggregates. Recording is lock-free when a span is
//!   sampled out (two relaxed atomics, no allocation) and allocation-free
//!   always: the ring buffer is preallocated and overwrites the oldest
//!   event when full. The process-global journal ([`global`]) is what
//!   the serve path and the simulator emit into; [`configure`] flips
//!   sampling/enablement at runtime.
//! * [`UtilizationReport`] — per-resource (PLIO ports, orth-AIE cores,
//!   DMA channels, DDR) busy fraction and operation counts for one
//!   accelerator run, derived purely from [`SimStats`]. Because replay
//!   reproduces stats bit-identically, the report is identical whether
//!   the run was live-simulated or replayed, and whether the journal
//!   was sampling or not. [`UtilizationReport::merge`] aggregates runs
//!   (a serving batch, a whole serving session) into one report.
//!
//! Everything here is observational: no simulated clock or counter is
//! consulted to *drive* the model, so `observability` on/off cannot
//! perturb timing — `replay_equivalence.rs` pins that bit-exactly.

use aie_sim::stats::SimStats;
use aie_sim::time::TimePs;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Number of pipeline stages a span can belong to.
pub const STAGE_COUNT: usize = 7;

/// Default capacity of the process-global journal's event ring.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// The pipeline stage a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Admission: request validated and enqueued.
    Admit,
    /// Time spent waiting in the admission queue until batch pickup.
    Queue,
    /// Batch formation: pickup until dispatch to a replica.
    BatchForm,
    /// Replica execution: host wall-clock of one batch's accelerator run.
    ReplicaExec,
    /// Simulated-timing stage: one modeled iteration (live or replayed)
    /// or one replay-profile probe; `modeled` carries the [`TimePs`].
    SimReplay,
    /// Rank-r apply execution against store-resident factors; `modeled`
    /// carries the Eq. 8–14 apply pipeline time.
    Apply,
    /// Incremental update execution: warm-started, low-rank, or
    /// fallback-full solve against the client's cached factors;
    /// `modeled` carries the accelerator task time when one ran.
    Update,
}

impl Stage {
    /// Every stage, in journal/report order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Admit,
        Stage::Queue,
        Stage::BatchForm,
        Stage::ReplicaExec,
        Stage::SimReplay,
        Stage::Apply,
        Stage::Update,
    ];

    /// Stable snake_case name (used in exports).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admit => "admit",
            Stage::Queue => "queue",
            Stage::BatchForm => "batch_form",
            Stage::ReplicaExec => "replica_exec",
            Stage::SimReplay => "sim_replay",
            Stage::Apply => "apply",
            Stage::Update => "update",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Admit => 0,
            Stage::Queue => 1,
            Stage::BatchForm => 2,
            Stage::ReplicaExec => 3,
            Stage::SimReplay => 4,
            Stage::Apply => 5,
            Stage::Update => 6,
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Which stage the span measures.
    pub stage: Stage,
    /// The request this span belongs to, when request-scoped.
    pub request_id: Option<u64>,
    /// Host wall-clock duration of the stage.
    pub wall: Duration,
    /// Modeled simulated time, for sim stages.
    pub modeled: Option<TimePs>,
}

/// Runtime switches for the journal (see [`configure`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch; when off, [`SpanJournal::record`] is one relaxed
    /// atomic load.
    pub enabled: bool,
    /// Record every `sample_every`-th span (1 = all). Sampled-out spans
    /// cost two relaxed atomic ops and are counted, not stored.
    pub sample_every: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            sample_every: 1,
        }
    }
}

/// Per-stage running aggregates, maintained at record time so the
/// summary covers every recorded span even after the ring overwrites.
#[derive(Debug, Clone, Copy, Default)]
struct StageAgg {
    count: u64,
    wall_ns_total: u64,
    wall_ns_max: u64,
    modeled_ps_total: u64,
}

struct Ring {
    buf: Vec<SpanEvent>,
    /// Total spans ever written into the ring (write cursor = `% cap`).
    written: u64,
    agg: [StageAgg; STAGE_COUNT],
    /// Aggregates since the previous [`SpanJournal::window_summary`]
    /// drain (the windowed export the online-DSE controller reads).
    window_agg: [StageAgg; STAGE_COUNT],
    /// `written` at the previous window drain.
    window_written: u64,
}

/// Fixed-capacity, preallocated span sink. See the module docs for the
/// overhead contract.
pub struct SpanJournal {
    ring: Mutex<Ring>,
    enabled: AtomicBool,
    sample_every: AtomicU64,
    counter: AtomicU64,
    sampled_out: AtomicU64,
    capacity: usize,
}

impl std::fmt::Debug for SpanJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanJournal")
            .field("capacity", &self.capacity)
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("sample_every", &self.sample_every.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl SpanJournal {
    /// A journal whose ring holds the last `capacity` events. The ring
    /// is preallocated here; recording never allocates.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanJournal {
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(capacity),
                written: 0,
                agg: [StageAgg::default(); STAGE_COUNT],
                window_agg: [StageAgg::default(); STAGE_COUNT],
                window_written: 0,
            }),
            enabled: AtomicBool::new(true),
            sample_every: AtomicU64::new(1),
            counter: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Ring> {
        // The ring's invariants hold at every await-free update, so a
        // poisoned lock (panicking recorder) is still safe to reuse.
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Applies runtime switches (enable + sampling period).
    pub fn configure(&self, cfg: ObsConfig) {
        self.enabled.store(cfg.enabled, Ordering::Relaxed);
        self.sample_every
            .store(cfg.sample_every.max(1), Ordering::Relaxed);
    }

    /// Whether the journal currently records at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one span. Disabled: one atomic load. Sampled out: two
    /// relaxed atomic RMWs. Sampled in: one short mutex section writing
    /// into preallocated storage. No path allocates.
    pub fn record(
        &self,
        stage: Stage,
        request_id: Option<u64>,
        wall: Duration,
        modeled: Option<TimePs>,
    ) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let every = self.sample_every.load(Ordering::Relaxed).max(1);
        if !n.is_multiple_of(every) {
            self.sampled_out.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let ev = SpanEvent {
            stage,
            request_id,
            wall,
            modeled,
        };
        let mut ring = self.lock();
        let pos = (ring.written % self.capacity as u64) as usize;
        if ring.buf.len() < self.capacity {
            ring.buf.push(ev);
        } else {
            ring.buf[pos] = ev;
        }
        ring.written += 1;
        let wall_ns = wall.as_nanos().min(u64::MAX as u128) as u64;
        let modeled_ps = modeled.map_or(0, |t| t.0);
        let idx = stage.index();
        let Ring {
            agg, window_agg, ..
        } = &mut *ring;
        for agg in [&mut agg[idx], &mut window_agg[idx]] {
            agg.count += 1;
            agg.wall_ns_total = agg.wall_ns_total.saturating_add(wall_ns);
            agg.wall_ns_max = agg.wall_ns_max.max(wall_ns);
            agg.modeled_ps_total = agg.modeled_ps_total.saturating_add(modeled_ps);
        }
    }

    /// The buffered (most recent) events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        let ring = self.lock();
        let len = ring.buf.len();
        let start = (ring.written % self.capacity as u64) as usize;
        let mut out = Vec::with_capacity(len);
        if len < self.capacity {
            out.extend_from_slice(&ring.buf);
        } else {
            out.extend_from_slice(&ring.buf[start..]);
            out.extend_from_slice(&ring.buf[..start]);
        }
        out
    }

    /// Per-stage aggregates over every span recorded since the last
    /// [`SpanJournal::clear`] (not just the buffered tail).
    pub fn summary(&self) -> JournalSummary {
        let ring = self.lock();
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                let agg = ring.agg[s.index()];
                StageSummary {
                    stage: s.name().to_string(),
                    count: agg.count,
                    wall_us_total: agg.wall_ns_total / 1_000,
                    wall_us_max: agg.wall_ns_max / 1_000,
                    modeled_ps_total: agg.modeled_ps_total,
                }
            })
            .collect();
        JournalSummary {
            recorded: ring.written,
            sampled_out: self.sampled_out.load(Ordering::Relaxed),
            buffered: ring.buf.len(),
            stages,
        }
    }

    /// Per-stage aggregates over the window since the previous
    /// `window_summary` call (the same windowed idiom as the serving
    /// throughput gauge). Reading drains the window: the controller that
    /// polls this sees only what happened since its last tick, while
    /// [`SpanJournal::summary`] keeps reporting lifetime totals for the
    /// metrics export.
    pub fn window_summary(&self) -> JournalSummary {
        let mut ring = self.lock();
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                let agg = ring.window_agg[s.index()];
                StageSummary {
                    stage: s.name().to_string(),
                    count: agg.count,
                    wall_us_total: agg.wall_ns_total / 1_000,
                    wall_us_max: agg.wall_ns_max / 1_000,
                    modeled_ps_total: agg.modeled_ps_total,
                }
            })
            .collect();
        let recorded = ring.written - ring.window_written;
        ring.window_written = ring.written;
        ring.window_agg = [StageAgg::default(); STAGE_COUNT];
        JournalSummary {
            recorded,
            sampled_out: self.sampled_out.load(Ordering::Relaxed),
            buffered: ring.buf.len(),
            stages,
        }
    }

    /// Drops buffered events, aggregates, and sampling counters.
    pub fn clear(&self) {
        let mut ring = self.lock();
        ring.buf.clear();
        ring.written = 0;
        ring.agg = [StageAgg::default(); STAGE_COUNT];
        ring.window_agg = [StageAgg::default(); STAGE_COUNT];
        ring.window_written = 0;
        drop(ring);
        self.counter.store(0, Ordering::Relaxed);
        self.sampled_out.store(0, Ordering::Relaxed);
    }
}

/// Aggregates of one stage's spans (see [`SpanJournal::summary`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Stage name (snake_case, see [`Stage::name`]).
    pub stage: String,
    /// Spans recorded for this stage.
    pub count: u64,
    /// Sum of wall-clock durations, microseconds.
    pub wall_us_total: u64,
    /// Largest single wall-clock duration, microseconds.
    pub wall_us_max: u64,
    /// Sum of modeled simulated time, picoseconds (sim stages).
    pub modeled_ps_total: u64,
}

/// Snapshot of the journal's per-stage aggregates and ring state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalSummary {
    /// Spans written into the ring since the last clear.
    pub recorded: u64,
    /// Spans dropped by sampling (counted, never stored).
    pub sampled_out: u64,
    /// Events currently held in the ring.
    pub buffered: usize,
    /// One entry per [`Stage`], in [`Stage::ALL`] order.
    pub stages: Vec<StageSummary>,
}

static GLOBAL: OnceLock<SpanJournal> = OnceLock::new();

/// The process-global journal every built-in emitter records into.
pub fn global() -> &'static SpanJournal {
    GLOBAL.get_or_init(|| SpanJournal::with_capacity(DEFAULT_JOURNAL_CAPACITY))
}

/// Applies runtime switches to the [`global`] journal.
pub fn configure(cfg: ObsConfig) {
    global().configure(cfg);
}

/// A modeled-hardware resource class tracked by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// PLIO stream ports (PL ↔ AIE array boundary).
    Plio,
    /// Orthogonalization AIE cores (`(2k−1) · k` tiles).
    AieCore,
    /// Inter-tile DMA channels (lateral, wraparound, band-break).
    Dma,
    /// The DDR controller (initial block loads + result store).
    Ddr,
}

impl ResourceKind {
    /// Every resource class, in report order.
    pub const ALL: [ResourceKind; 4] = [
        ResourceKind::Plio,
        ResourceKind::AieCore,
        ResourceKind::Dma,
        ResourceKind::Ddr,
    ];

    /// Stable snake_case name (used in exports).
    pub fn name(self) -> &'static str {
        match self {
            ResourceKind::Plio => "plio",
            ResourceKind::AieCore => "aie_core",
            ResourceKind::Dma => "dma",
            ResourceKind::Ddr => "ddr",
        }
    }
}

/// How many instances of each resource class a plan instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceCounts {
    /// PLIO ports (orth in + orth out + norm).
    pub plio_ports: usize,
    /// Orthogonalization AIE cores.
    pub aie_cores: usize,
    /// Inter-tile DMA channels (per-core + wrap + switch).
    pub dma_channels: usize,
    /// DDR controllers (always 1 on the modeled device).
    pub ddr_controllers: usize,
}

impl ResourceCounts {
    fn of(self, kind: ResourceKind) -> usize {
        match kind {
            ResourceKind::Plio => self.plio_ports,
            ResourceKind::AieCore => self.aie_cores,
            ResourceKind::Dma => self.dma_channels,
            ResourceKind::Ddr => self.ddr_controllers,
        }
    }
}

/// One resource class's utilization over a report's horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceUtil {
    /// Which resource class.
    pub kind: ResourceKind,
    /// Instances of the class in the plan.
    pub count: usize,
    /// Busy time summed across all instances.
    pub busy: TimePs,
    /// Operations performed (transfers or kernel invocations).
    pub ops: u64,
    /// `busy / (horizon · count)`, clamped to `[0, 1]`.
    pub busy_fraction: f64,
}

/// Per-resource utilization of one (or one aggregate of) accelerator
/// run(s), derived purely from [`SimStats`] — see the module docs for
/// why that makes it replay- and observability-invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Total simulated time covered (sums under [`UtilizationReport::merge`]).
    pub horizon: TimePs,
    /// One entry per [`ResourceKind`], in [`ResourceKind::ALL`] order.
    pub resources: Vec<ResourceUtil>,
    /// The class with the highest busy fraction — the modeled
    /// bottleneck in the sense of the paper's Eq. 8–14 decomposition.
    pub critical: ResourceKind,
}

impl UtilizationReport {
    /// Builds the report for one run from its final statistics.
    pub fn from_stats(stats: &SimStats, counts: ResourceCounts) -> Self {
        let horizon = stats.elapsed;
        let entry = |kind: ResourceKind, busy: TimePs, ops: u64| {
            let count = counts.of(kind);
            ResourceUtil {
                kind,
                count,
                busy,
                ops,
                busy_fraction: busy_fraction(busy, horizon, count),
            }
        };
        let resources = vec![
            entry(
                ResourceKind::Plio,
                stats.plio_busy,
                stats.plio_transfers as u64,
            ),
            entry(
                ResourceKind::AieCore,
                stats.orth_busy,
                (stats.orth_invocations + stats.norm_invocations) as u64,
            ),
            entry(
                ResourceKind::Dma,
                stats.dma_busy,
                stats.dma_transfers as u64,
            ),
            entry(
                ResourceKind::Ddr,
                stats.ddr_busy,
                stats.ddr_transfers as u64,
            ),
        ];
        let critical = critical_of(&resources);
        UtilizationReport {
            horizon,
            resources,
            critical,
        }
    }

    /// Folds another report (same plan or a compatible one) into this
    /// one: horizons and busy times add (sequential aggregation over
    /// simulated time), instance counts take the maximum, and busy
    /// fractions and the critical resource are recomputed.
    pub fn merge(&mut self, other: &UtilizationReport) {
        self.horizon += other.horizon;
        for (mine, theirs) in self.resources.iter_mut().zip(&other.resources) {
            debug_assert_eq!(mine.kind, theirs.kind);
            mine.count = mine.count.max(theirs.count);
            mine.busy += theirs.busy;
            mine.ops += theirs.ops;
        }
        for r in &mut self.resources {
            r.busy_fraction = busy_fraction(r.busy, self.horizon, r.count);
        }
        self.critical = critical_of(&self.resources);
    }

    /// This report's entry for `kind`.
    pub fn resource(&self, kind: ResourceKind) -> &ResourceUtil {
        self.resources
            .iter()
            .find(|r| r.kind == kind)
            .expect("report holds every resource kind")
    }
}

fn busy_fraction(busy: TimePs, horizon: TimePs, count: usize) -> f64 {
    if horizon == TimePs::ZERO || count == 0 {
        return 0.0;
    }
    (busy.0 as f64 / (horizon.0 as f64 * count as f64)).min(1.0)
}

fn critical_of(resources: &[ResourceUtil]) -> ResourceKind {
    resources
        .iter()
        .max_by(|a, b| {
            a.busy_fraction
                .partial_cmp(&b.busy_fraction)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|r| r.kind)
        .unwrap_or(ResourceKind::Plio)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> ResourceCounts {
        ResourceCounts {
            plio_ports: 4,
            aie_cores: 28,
            dma_channels: 36,
            ddr_controllers: 1,
        }
    }

    #[test]
    fn journal_records_and_summarizes() {
        let j = SpanJournal::with_capacity(8);
        j.record(Stage::Admit, Some(1), Duration::from_micros(5), None);
        j.record(
            Stage::SimReplay,
            None,
            Duration::from_micros(10),
            Some(TimePs(1234)),
        );
        j.record(
            Stage::SimReplay,
            None,
            Duration::from_micros(2),
            Some(TimePs(766)),
        );
        let s = j.summary();
        assert_eq!(s.recorded, 3);
        assert_eq!(s.sampled_out, 0);
        assert_eq!(s.buffered, 3);
        let admit = &s.stages[Stage::Admit.index()];
        assert_eq!((admit.count, admit.wall_us_total), (1, 5));
        let sim = &s.stages[Stage::SimReplay.index()];
        assert_eq!(sim.count, 2);
        assert_eq!(sim.wall_us_total, 12);
        assert_eq!(sim.wall_us_max, 10);
        assert_eq!(sim.modeled_ps_total, 2000);
        assert_eq!(j.events().len(), 3);
    }

    #[test]
    fn window_summary_drains_but_lifetime_summary_keeps_totals() {
        let j = SpanJournal::with_capacity(8);
        j.record(Stage::Queue, Some(1), Duration::from_micros(4), None);
        j.record(Stage::Queue, Some(2), Duration::from_micros(6), None);
        let w1 = j.window_summary();
        assert_eq!(w1.recorded, 2);
        assert_eq!(w1.stages[Stage::Queue.index()].count, 2);
        assert_eq!(w1.stages[Stage::Queue.index()].wall_us_total, 10);
        // The drain opened a fresh window; only new spans appear in it.
        j.record(Stage::Queue, Some(3), Duration::from_micros(1), None);
        let w2 = j.window_summary();
        assert_eq!(w2.recorded, 1);
        assert_eq!(w2.stages[Stage::Queue.index()].wall_us_total, 1);
        assert_eq!(w2.stages[Stage::Queue.index()].wall_us_max, 1);
        // Lifetime totals are untouched by window drains.
        let s = j.summary();
        assert_eq!(s.recorded, 3);
        assert_eq!(s.stages[Stage::Queue.index()].wall_us_total, 11);
    }

    #[test]
    fn ring_overwrites_oldest_but_summary_keeps_totals() {
        let j = SpanJournal::with_capacity(4);
        for i in 0..10u64 {
            j.record(Stage::Queue, Some(i), Duration::from_micros(1), None);
        }
        let events = j.events();
        assert_eq!(events.len(), 4);
        let ids: Vec<_> = events.iter().map(|e| e.request_id.unwrap()).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        let s = j.summary();
        assert_eq!(s.recorded, 10);
        assert_eq!(s.stages[Stage::Queue.index()].count, 10);
        assert_eq!(s.stages[Stage::Queue.index()].wall_us_total, 10);
    }

    #[test]
    fn sampling_drops_and_counts() {
        let j = SpanJournal::with_capacity(16);
        j.configure(ObsConfig {
            enabled: true,
            sample_every: 4,
        });
        for _ in 0..8 {
            j.record(Stage::Admit, None, Duration::ZERO, None);
        }
        let s = j.summary();
        // Spans 0 and 4 sampled in, the other six counted as dropped.
        assert_eq!(s.recorded, 2);
        assert_eq!(s.sampled_out, 6);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let j = SpanJournal::with_capacity(16);
        j.configure(ObsConfig {
            enabled: false,
            sample_every: 1,
        });
        j.record(Stage::Admit, None, Duration::ZERO, None);
        let s = j.summary();
        assert_eq!(s.recorded, 0);
        assert_eq!(s.sampled_out, 0);
    }

    #[test]
    fn clear_resets_everything() {
        let j = SpanJournal::with_capacity(4);
        j.record(Stage::Admit, None, Duration::from_micros(1), None);
        j.clear();
        let s = j.summary();
        assert_eq!((s.recorded, s.buffered), (0, 0));
        assert_eq!(s.stages[Stage::Admit.index()].count, 0);
    }

    #[test]
    fn utilization_identifies_critical_resource() {
        let stats = SimStats {
            elapsed: TimePs(1_000),
            plio_busy: TimePs(3_200),  // 4 ports  -> 0.8
            orth_busy: TimePs(14_000), // 28 cores -> 0.5
            dma_busy: TimePs(3_600),   // 36 chans -> 0.1
            ddr_busy: TimePs(200),     // 1 ctrl   -> 0.2
            plio_transfers: 100,
            orth_invocations: 50,
            norm_invocations: 6,
            dma_transfers: 20,
            ddr_transfers: 9,
            ..Default::default()
        };
        let r = UtilizationReport::from_stats(&stats, counts());
        assert_eq!(r.critical, ResourceKind::Plio);
        assert!((r.resource(ResourceKind::Plio).busy_fraction - 0.8).abs() < 1e-12);
        assert!((r.resource(ResourceKind::AieCore).busy_fraction - 0.5).abs() < 1e-12);
        assert!((r.resource(ResourceKind::Dma).busy_fraction - 0.1).abs() < 1e-12);
        assert!((r.resource(ResourceKind::Ddr).busy_fraction - 0.2).abs() < 1e-12);
        assert_eq!(r.resource(ResourceKind::AieCore).ops, 56);
        assert_eq!(r.resource(ResourceKind::Ddr).ops, 9);
    }

    #[test]
    fn utilization_merge_weights_by_horizon() {
        let mk = |elapsed: u64, plio: u64| {
            UtilizationReport::from_stats(
                &SimStats {
                    elapsed: TimePs(elapsed),
                    plio_busy: TimePs(plio),
                    plio_transfers: 1,
                    ..Default::default()
                },
                counts(),
            )
        };
        let mut a = mk(1_000, 4_000); // fraction 1.0
        let b = mk(3_000, 0); // fraction 0.0
        a.merge(&b);
        assert_eq!(a.horizon, TimePs(4_000));
        assert_eq!(a.resource(ResourceKind::Plio).ops, 2);
        // 4000 busy over 4 ports x 4000 ps = 0.25, not the 0.5 mean.
        assert!((a.resource(ResourceKind::Plio).busy_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_horizon_is_all_zero() {
        let r = UtilizationReport::from_stats(&SimStats::default(), counts());
        for res in &r.resources {
            assert_eq!(res.busy_fraction, 0.0);
        }
    }
}
