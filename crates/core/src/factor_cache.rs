//! Per-client incremental-SVD factor cache.
//!
//! The warm-start and low-rank update paths (see
//! [`svd_kernels::incremental`]) only pay off when the previous solve's
//! factors are still around by the time the client's next matrix
//! arrives. This module provides that residency layer for the serving
//! path:
//!
//! * **Per-client entries** — each [`FactorCacheEntry`] snapshots one
//!   client's previous matrix (the delta baseline), its recovered right
//!   basis `V` and spectrum `Σ` (the warm-start seed), the truncated
//!   factors (the Brand-update state), and how many warm solves have
//!   run since the last full recompute (the staleness counter).
//! * **Fingerprinting** — entries carry a content hash of the matrix
//!   they were computed from, so an unchanged resubmission is detected
//!   in O(mn) hashing without forming a delta.
//! * **LRU byte-budget eviction** — the cache charges each entry its
//!   full resident payload and evicts least-recently-used clients past
//!   the budget, reusing the clock-LRU idiom of
//!   [`crate::plan_cache::PlanCache`] / `factor_store::FactorStore`.
//!   An evicted client simply takes the full-recompute path on its next
//!   update — eviction can never serve a stale basis.
//! * **Counters** — hit / miss / eviction / publish totals plus a
//!   windowed hit rate and per-client resident bytes surface through
//!   [`FactorCache::stats`] for the metrics report.

use serde::Serialize;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use svd_kernels::{Matrix, TruncatedSvd};

/// Identifier of a client whose incremental state the cache holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct ClientId(pub u64);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

/// Content hash of a matrix: shape plus the exact bit pattern of every
/// element. Two matrices fingerprint equal iff they are bit-identical,
/// which is exactly the "nothing changed, serve the cached factors"
/// fast path.
pub fn fingerprint_matrix(a: &Matrix<f32>) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    a.rows().hash(&mut h);
    a.cols().hash(&mut h);
    for &x in a.as_slice() {
        x.to_bits().hash(&mut h);
    }
    h.finish()
}

/// One client's cached incremental-SVD state: everything the update
/// router needs to classify the next matrix and run the warm-start or
/// low-rank fast path. Immutable behind an `Arc` — refreshes publish a
/// replacement entry, and in-flight updates pin whatever entry they
/// admitted against even if a republish or eviction replaces it.
#[derive(Debug, Clone)]
pub struct FactorCacheEntry {
    /// Which client this state belongs to.
    pub client: ClientId,
    /// [`fingerprint_matrix`] of `a_prev`.
    pub fingerprint: u64,
    /// The matrix the factors below were computed from — the baseline
    /// the next update's delta is measured against.
    pub a_prev: Matrix<f32>,
    /// Right singular basis of `a_prev` (the warm-start seed).
    pub v: Matrix<f32>,
    /// Singular values of `a_prev`, descending.
    pub sigma: Vec<f32>,
    /// Truncated factors of `a_prev` (the Brand-update state).
    pub truncated: TruncatedSvd<f32>,
    /// Warm/low-rank solves since the last full recompute — compared
    /// against [`svd_kernels::StalenessBound::max_warm_solves`].
    pub warm_solves_since_full: u32,
    /// Resident payload the cache charges for this entry.
    pub bytes: usize,
}

fn matrix_bytes(a: &Matrix<f32>) -> usize {
    std::mem::size_of_val(a.as_slice())
}

impl FactorCacheEntry {
    /// Builds an entry, computing its fingerprint and byte charge.
    pub fn new(
        client: ClientId,
        a_prev: Matrix<f32>,
        v: Matrix<f32>,
        sigma: Vec<f32>,
        truncated: TruncatedSvd<f32>,
        warm_solves_since_full: u32,
    ) -> Self {
        let fingerprint = fingerprint_matrix(&a_prev);
        let bytes = matrix_bytes(&a_prev)
            + matrix_bytes(&v)
            + sigma.len() * std::mem::size_of::<f32>()
            + truncated.approx_bytes();
        FactorCacheEntry {
            client,
            fingerprint,
            a_prev,
            v,
            sigma,
            truncated,
            warm_solves_since_full,
            bytes,
        }
    }

    /// `true` when `a` is bit-identical to the matrix this entry was
    /// computed from (the zero-delta fast path).
    pub fn matches(&self, a: &Matrix<f32>) -> bool {
        self.a_prev.rows() == a.rows()
            && self.a_prev.cols() == a.cols()
            && self.fingerprint == fingerprint_matrix(a)
    }
}

/// Resident bytes of one client (stats breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ClientBytes {
    /// The client.
    pub client: u64,
    /// Bytes its entry currently charges against the budget.
    pub bytes: u64,
}

/// Counter snapshot of a [`FactorCache`] (serialized into the serving
/// metrics report).
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FactorCacheStats {
    /// Lookups that found a resident entry.
    pub hits: u64,
    /// Lookups for clients not resident (never published or evicted).
    pub misses: u64,
    /// Entries removed by the byte-budget LRU policy.
    pub evictions: u64,
    /// Entries published (first publishes and refreshes alike).
    pub publishes: u64,
    /// Bytes currently charged against the budget.
    pub resident_bytes: u64,
    /// Clients currently resident.
    pub resident_clients: u64,
    /// The configured byte budget.
    pub byte_budget: u64,
    /// Hit fraction over the window since the previous `stats()` call
    /// (0.0 when the window saw no lookups) — same windowed idiom as
    /// the serving throughput gauge.
    pub hit_rate_window: f64,
    /// Per-client resident bytes, ascending by client id.
    pub clients: Vec<ClientBytes>,
}

struct CacheInner {
    /// client id -> (entry, last-touch stamp).
    entries: HashMap<u64, (Arc<FactorCacheEntry>, u64)>,
    resident_bytes: usize,
    clock: u64,
}

/// Thread-safe per-client factor cache with LRU byte-budget eviction.
///
/// Lock discipline matches [`crate::plan_cache::PlanCache`]: one std
/// `Mutex` around the map, held only for map manipulation (entries are
/// `Arc`-shared, so gets are O(1) pointer clones).
pub struct FactorCache {
    byte_budget: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    publishes: AtomicU64,
    /// (hits, lookups) at the start of the current stats window.
    window: Mutex<(u64, u64)>,
}

impl std::fmt::Debug for FactorCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FactorCache")
            .field("byte_budget", &self.byte_budget)
            .field("resident", &self.len())
            .finish()
    }
}

impl FactorCache {
    /// Creates a cache that evicts least-recently-used clients once the
    /// resident payload exceeds `byte_budget` bytes. The most recently
    /// published client is always retained, even when its entry alone
    /// exceeds the budget — a cache that cannot hold the entry it was
    /// just handed would make every update a guaranteed miss.
    pub fn new(byte_budget: usize) -> Self {
        FactorCache {
            byte_budget,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                resident_bytes: 0,
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            window: Mutex::new((0, 0)),
        }
    }

    /// Publishes `entry` as the client's current state, replacing any
    /// previous entry (in-flight readers holding the old `Arc` keep it
    /// alive until they finish) and evicting least-recently-used
    /// *other* clients while the cache exceeds its byte budget.
    pub fn publish(&self, entry: FactorCacheEntry) -> Arc<FactorCacheEntry> {
        let client = entry.client.0;
        let bytes = entry.bytes;
        let entry = Arc::new(entry);
        let mut inner = self.inner.lock().expect("factor cache poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some((old, _)) = inner.entries.insert(client, (Arc::clone(&entry), stamp)) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += bytes;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        while inner.resident_bytes > self.byte_budget && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(&id, _)| id != client)
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&id, _)| id);
            match victim {
                Some(id) => {
                    if let Some((evicted, _)) = inner.entries.remove(&id) {
                        inner.resident_bytes -= evicted.bytes;
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
        entry
    }

    /// Looks up the client's resident entry, bumping its LRU stamp.
    /// Returns `None` (a recorded miss) when the client was never
    /// published or has been evicted — the caller then takes the full
    /// recompute path, so eviction can never serve a stale basis.
    pub fn get(&self, client: ClientId) -> Option<Arc<FactorCacheEntry>> {
        let mut inner = self.inner.lock().expect("factor cache poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.entries.get_mut(&client.0) {
            Some((entry, last_used)) => {
                *last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(entry))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Drops the client's entry (if resident), forcing its next update
    /// onto the full-recompute path.
    pub fn invalidate(&self, client: ClientId) {
        let mut inner = self.inner.lock().expect("factor cache poisoned");
        if let Some((evicted, _)) = inner.entries.remove(&client.0) {
            inner.resident_bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of clients currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("factor cache poisoned")
            .entries
            .len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Cumulative (hits, misses) without touching the windowed
    /// hit-rate state, so background readers diffing the counters on
    /// their own cadence — e.g. an autoscale controller — do not
    /// clobber the window [`stats`](Self::stats) reports to scrapes.
    pub fn lookup_totals(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Counter snapshot for the metrics path. Reading the snapshot
    /// closes the current hit-rate window and opens the next one.
    pub fn stats(&self) -> FactorCacheStats {
        let (resident_bytes, resident_clients, clients) = {
            let inner = self.inner.lock().expect("factor cache poisoned");
            let mut clients: Vec<ClientBytes> = inner
                .entries
                .iter()
                .map(|(&id, (entry, _))| ClientBytes {
                    client: id,
                    bytes: entry.bytes as u64,
                })
                .collect();
            clients.sort_by_key(|c| c.client);
            (
                inner.resident_bytes as u64,
                inner.entries.len() as u64,
                clients,
            )
        };
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        let hit_rate_window = {
            let mut window = self.window.lock().expect("factor cache poisoned");
            let (hits0, lookups0) = *window;
            *window = (hits, lookups);
            let dl = lookups.saturating_sub(lookups0);
            if dl == 0 {
                0.0
            } else {
                hits.saturating_sub(hits0) as f64 / dl as f64
            }
        };
        FactorCacheStats {
            hits,
            misses,
            evictions: self.evictions.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            resident_bytes,
            resident_clients,
            byte_budget: self.byte_budget as u64,
            hit_rate_window,
            clients,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svd_kernels::{hestenes_jacobi, JacobiOptions};

    fn entry(client: u64, n: usize, scale: f32, warm_solves: u32) -> FactorCacheEntry {
        let a = Matrix::from_fn(n, n, |r, c| {
            scale * (((r * 31 + c * 7 + 3) % 13) as f32 / 6.0 - 1.0)
                + if r == c { 2.0 * scale } else { 0.0 }
        });
        let svd = hestenes_jacobi(
            &a,
            &JacobiOptions {
                precision: 1e-5,
                compute_v: true,
                adaptive: false,
                ..Default::default()
            },
        )
        .unwrap();
        let v = svd.v.clone().unwrap();
        let sigma = svd.sorted_singular_values();
        let truncated = svd.truncate(&a, (n / 2).max(1)).unwrap();
        FactorCacheEntry::new(ClientId(client), a, v, sigma, truncated, warm_solves)
    }

    #[test]
    fn publish_then_get_round_trips() {
        let cache = FactorCache::new(1 << 20);
        let e = entry(7, 8, 1.0, 0);
        let bytes = e.bytes;
        let published = cache.publish(e);
        let got = cache.get(ClientId(7)).unwrap();
        assert!(Arc::ptr_eq(&published, &got));
        assert!(got.matches(&published.a_prev));
        assert_eq!(got.warm_solves_since_full, 0);
        assert!(cache.get(ClientId(8)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.publishes), (1, 1, 1));
        assert_eq!(stats.resident_bytes, bytes as u64);
        assert_eq!(
            stats.clients,
            vec![ClientBytes {
                client: 7,
                bytes: bytes as u64
            }]
        );
    }

    #[test]
    fn fingerprint_detects_any_bit_change() {
        let e = entry(1, 8, 1.0, 0);
        let mut tweaked = e.a_prev.clone();
        assert!(e.matches(&tweaked));
        tweaked[(3, 5)] += 1e-7;
        assert!(!e.matches(&tweaked), "bit change must break the match");
        let smaller = Matrix::from_fn(4, 4, |r, c| e.a_prev[(r, c)]);
        assert!(!e.matches(&smaller), "shape change must break the match");
    }

    #[test]
    fn republish_replaces_and_recharges_bytes() {
        let cache = FactorCache::new(1 << 20);
        cache.publish(entry(1, 8, 1.0, 0));
        let refreshed = cache.publish(entry(1, 8, 2.0, 3));
        let got = cache.get(ClientId(1)).unwrap();
        assert!(Arc::ptr_eq(&refreshed, &got));
        assert_eq!(got.warm_solves_since_full, 3);
        let stats = cache.stats();
        assert_eq!(stats.resident_clients, 1);
        assert_eq!(stats.resident_bytes, refreshed.bytes as u64);
        assert_eq!(stats.publishes, 2);
    }

    #[test]
    fn byte_budget_evicts_lru_never_the_just_published() {
        let one = entry(0, 8, 1.0, 0).bytes;
        let cache = FactorCache::new(2 * one);
        cache.publish(entry(1, 8, 1.0, 0));
        cache.publish(entry(2, 8, 1.0, 0));
        // Touch client 1 so client 2 is the LRU victim.
        cache.get(ClientId(1)).unwrap();
        cache.publish(entry(3, 8, 1.0, 0));
        assert!(cache.get(ClientId(1)).is_some());
        assert!(cache.get(ClientId(2)).is_none(), "LRU client evicted");
        assert!(cache.get(ClientId(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        // An entry bigger than the whole budget still publishes.
        let tight = FactorCache::new(16);
        tight.publish(entry(9, 8, 1.0, 0));
        assert!(tight.get(ClientId(9)).is_some());
    }

    #[test]
    fn eviction_forces_full_recompute_not_a_stale_basis() {
        // The staleness property at the cache level: once evicted, a
        // client's basis is unreachable — `get` returns `None` and the
        // router must take the full path. The refreshed entry then
        // restarts the warm-solve counter from zero.
        let one = entry(0, 8, 1.0, 0).bytes;
        let cache = FactorCache::new(one);
        cache.publish(entry(1, 8, 1.0, 7));
        cache.publish(entry(2, 8, 1.0, 0)); // evicts client 1
        assert!(cache.get(ClientId(1)).is_none());
        let refreshed = cache.publish(entry(1, 8, 3.0, 0));
        assert_eq!(refreshed.warm_solves_since_full, 0);
        // Invalidation is an explicit eviction with the same guarantee.
        cache.invalidate(ClientId(1));
        assert!(cache.get(ClientId(1)).is_none());
    }

    #[test]
    fn stats_window_tracks_recent_hit_rate() {
        let cache = FactorCache::new(1 << 20);
        cache.publish(entry(1, 8, 1.0, 0));
        cache.get(ClientId(1)).unwrap(); // hit
        assert!(cache.get(ClientId(2)).is_none()); // miss
        let first = cache.stats();
        assert!((first.hit_rate_window - 0.5).abs() < 1e-12);
        // The window restarts: an all-hit stretch reads 1.0 even though
        // the lifetime rate is 3/4.
        cache.get(ClientId(1)).unwrap();
        cache.get(ClientId(1)).unwrap();
        let second = cache.stats();
        assert!((second.hit_rate_window - 1.0).abs() < 1e-12);
        assert_eq!(second.hits, 3);
        assert_eq!(second.misses, 1);
        // An empty window reads 0.0, not NaN.
        assert_eq!(cache.stats().hit_rate_window, 0.0);
    }

    #[test]
    fn per_client_bytes_sum_to_resident() {
        let cache = FactorCache::new(1 << 20);
        cache.publish(entry(3, 8, 1.0, 0));
        cache.publish(entry(1, 16, 1.0, 0));
        cache.publish(entry(2, 8, 2.0, 0));
        let stats = cache.stats();
        assert_eq!(stats.clients.len(), 3);
        let ids: Vec<u64> = stats.clients.iter().map(|c| c.client).collect();
        assert_eq!(ids, vec![1, 2, 3], "ascending by client id");
        let sum: u64 = stats.clients.iter().map(|c| c.bytes).sum();
        assert_eq!(sum, stats.resident_bytes);
    }

    #[test]
    fn concurrent_gets_and_publishes_are_safe() {
        let cache = Arc::new(FactorCache::new(1 << 20));
        cache.publish(entry(0, 8, 1.0, 0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    if i % 5 == 0 {
                        cache.publish(entry(t, 8, 1.0 + t as f32, i as u32));
                    }
                    if let Some(e) = cache.get(ClientId(t % 2)) {
                        assert!(e.matches(&e.a_prev));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().publishes, 1 + 4 * 5);
    }
}
