//! The normalization pipeline (Algorithm 1 lines 18–26; Eq. 7).
//!
//! After the orthogonalization stage converges, each block streams to the
//! `k` norm-AIEs over the two norm PLIOs ("the two blocks in the block
//! pair are transmitted sequentially between the PL and AIE", §III-C).
//! Each norm-AIE computes `σⱼ = ‖bⱼ‖₂` and `uⱼ = bⱼ/σⱼ` for its columns;
//! results return to the PL and finally to DDR.

use crate::config::{FidelityMode, HeteroSvdConfig};
use crate::placement::Placement;
use aie_sim::kernel::KernelCostModel;
use aie_sim::plio::{PlioDirection, PlioModel};
use aie_sim::stats::SimStats;
use aie_sim::time::TimePs;
use aie_sim::timeline::Timeline;
use svd_kernels::Matrix;

/// Result of the normalization stage.
#[derive(Debug, Clone, PartialEq)]
pub struct NormOutcome {
    /// Completion time of the stage (absolute simulation clock).
    pub end: TimePs,
    /// Singular values per column (empty in timing-only fidelity).
    pub sigma: Vec<f32>,
}

/// Runs the normalization stage.
///
/// `b` holds the converged orthogonal columns; in functional fidelity the
/// columns are normalized in place (becoming `U`) and `sigma` is returned.
/// `start` is the simulation time the orth stage finished.
pub fn run_norm_stage(
    config: &HeteroSvdConfig,
    placement: &Placement,
    b: &mut Matrix<f32>,
    start: TimePs,
    stats: &mut SimStats,
) -> NormOutcome {
    let k = config.engine_parallelism;
    let m_bytes = config.column_bytes();
    let plio = PlioModel::new(config.calibration, config.pl_freq);
    let kernels = KernelCostModel::new(config.calibration);
    let functional = config.fidelity == FidelityMode::Functional;

    let mut plio_in = Timeline::new();
    let mut plio_out = Timeline::new();
    let mut cores = vec![Timeline::new(); k];
    let _ = placement; // placement fixes the norm tiles; counts already in usage

    let tx = plio.throttled_transfer_time(m_bytes, 1, PlioDirection::ToAie, 1);
    let rx = plio.throttled_transfer_time(m_bytes, 1, PlioDirection::ToPl, 1);
    let norm_dur = kernels.norm_time(config.rows);

    let mut sigma = Vec::with_capacity(if functional { config.cols } else { 0 });
    let mut end = start;
    for col in 0..config.cols {
        // Tx the column to its norm-AIE (columns round-robin over cores).
        let (_, tx_end) = plio_in.schedule(start, tx);
        stats.plio_bytes_in += m_bytes;
        stats.plio_busy += tx;

        let core = col % k;
        let (_, k_end) = cores[core].schedule(tx_end, norm_dur);
        stats.norm_invocations += 1;

        if functional {
            let c = b.col_mut(col);
            let norm_sq: f32 = c.iter().map(|&x| x * x).sum();
            let norm = norm_sq.sqrt();
            sigma.push(norm);
            if norm > 0.0 {
                let inv = 1.0 / norm;
                for x in c.iter_mut() {
                    *x *= inv;
                }
            }
        }

        let (_, rx_end) = plio_out.schedule(k_end, rx);
        stats.plio_bytes_out += m_bytes;
        stats.plio_busy += rx;
        end = end.max(rx_end);
    }

    NormOutcome { end, sigma }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeteroSvdConfig;
    use crate::placement::Placement;

    fn setup(n: usize) -> (HeteroSvdConfig, Placement) {
        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(2)
            .pl_freq_mhz(208.3)
            .build()
            .unwrap();
        let placement = Placement::plan(&cfg).unwrap();
        (cfg, placement)
    }

    #[test]
    fn normalizes_columns_and_returns_sigma() {
        let (cfg, placement) = setup(8);
        let mut b = Matrix::from_fn(8, 8, |r, c| if r == c { (c + 1) as f32 } else { 0.0 });
        let mut stats = SimStats::new();
        let out = run_norm_stage(&cfg, &placement, &mut b, TimePs::ZERO, &mut stats);
        assert_eq!(out.sigma.len(), 8);
        for (j, &s) in out.sigma.iter().enumerate() {
            assert!((s - (j + 1) as f32).abs() < 1e-6);
            assert!((b[(j, j)] - 1.0).abs() < 1e-6);
        }
        assert_eq!(stats.norm_invocations, 8);
        assert!(out.end > TimePs::ZERO);
    }

    #[test]
    fn zero_columns_are_left_zero() {
        let (cfg, placement) = setup(8);
        let mut b: Matrix<f32> = Matrix::zeros(8, 8);
        let mut stats = SimStats::new();
        let out = run_norm_stage(&cfg, &placement, &mut b, TimePs::ZERO, &mut stats);
        assert!(out.sigma.iter().all(|&s| s == 0.0));
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn stage_time_scales_with_columns() {
        let (cfg8, p8) = setup(8);
        let (cfg16, p16) = setup(16);
        let mut s1 = SimStats::new();
        let mut s2 = SimStats::new();
        let t8 = run_norm_stage(&cfg8, &p8, &mut Matrix::zeros(8, 8), TimePs::ZERO, &mut s1).end;
        let t16 = run_norm_stage(
            &cfg16,
            &p16,
            &mut Matrix::zeros(16, 16),
            TimePs::ZERO,
            &mut s2,
        )
        .end;
        assert!(t16 > t8);
    }

    #[test]
    fn starts_after_given_time() {
        let (cfg, placement) = setup(8);
        let mut stats = SimStats::new();
        let start = TimePs(1_000_000);
        let out = run_norm_stage(
            &cfg,
            &placement,
            &mut Matrix::zeros(8, 8),
            start,
            &mut stats,
        );
        assert!(out.end > start);
    }
}
