//! Accelerator configuration (the micro-architecture parameters of
//! Table I) and its builder.

use crate::HeteroSvdError;
use aie_sim::calibration::Calibration;
use aie_sim::device::DeviceProfile;
use aie_sim::geometry::ArrayGeometry;
use aie_sim::pl::PlModel;
use aie_sim::time::Frequency;
use serde::{Deserialize, Serialize};
use svd_orderings::movement::{DataflowKind, OrderingKind};

/// Maximum engine parallelism supported by the placement (Table I:
/// `P_eng ∈ [1, 11]`).
pub const MAX_ENGINE_PARALLELISM: usize = 11;
/// Maximum task parallelism (Table I: `P_task ∈ [1, 26]`).
pub const MAX_TASK_PARALLELISM: usize = 26;

/// Simulation fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FidelityMode {
    /// Execute the kernels' arithmetic for real (f32) alongside the timing
    /// simulation; convergence is measured, results are returned.
    #[default]
    Functional,
    /// Timing-only: skip the arithmetic (large parameter sweeps). Requires
    /// `fixed_iterations`; the returned factors are zeros.
    TimingOnly,
}

/// Full configuration of a HeteroSVD instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroSvdConfig {
    /// Matrix rows `m` (column length on the AIEs).
    pub rows: usize,
    /// Matrix columns `n`; must be a multiple of `2 · engine_parallelism`.
    pub cols: usize,
    /// `P_eng`: orth-AIEs per layer; the column-block size.
    pub engine_parallelism: usize,
    /// `P_task`: independent task pipelines instantiated on the device.
    pub task_parallelism: usize,
    /// PL clock; defaults to the achievable frequency of the design.
    pub pl_freq: Frequency,
    /// SVD ordering (the co-design uses [`OrderingKind::ShiftingRing`]).
    pub ordering: OrderingKind,
    /// Output-placement dataflow (the co-design uses
    /// [`DataflowKind::Relocated`]).
    pub dataflow: DataflowKind,
    /// Convergence threshold for Eq. (6) (§V-B uses `1e-6`).
    pub precision: f64,
    /// Maximum outer iterations when converging adaptively.
    pub max_iterations: usize,
    /// Run exactly this many iterations (the paper's Table II/VI protocol
    /// fixes six); required in [`FidelityMode::TimingOnly`].
    pub fixed_iterations: Option<usize>,
    /// Simulation fidelity.
    pub fidelity: FidelityMode,
    /// Record a per-pass execution trace (see
    /// [`crate::orth_pipeline::PassRecord`]); off by default.
    pub record_trace: bool,
    /// Worker threads applying a layer's independent column-pair
    /// rotations in functional mode (default: the host's available
    /// parallelism; `1` = fully serial). Results are bit-identical at
    /// any setting; this knob only changes host-side wall-clock.
    pub functional_parallelism: usize,
    /// Replay the plan's cached timing profile instead of re-simulating
    /// every `Timeline` (default on). Replay is exact by construction —
    /// the clock is data-independent and the profile is only used when
    /// the run starts from the state it was probed from — so this knob
    /// exists for benchmarking and cross-checking, not correctness.
    pub timing_replay: bool,
    /// Convergence-adaptive sweep engine for functional fidelity
    /// (default on): threshold-Jacobi gating skips the rotation apply
    /// for pairs whose Eq. (6) measure is below the per-sweep threshold,
    /// and dirty-column tracking answers repeat visits of untouched
    /// pairs from a cache without re-running the dot products. The
    /// accelerator still streams every pass — modeled timing, stats, and
    /// traces are bit-identical with the knob on or off — so this only
    /// cuts host-side functional compute; singular values stay within
    /// the configured `precision`'s accuracy budget of the exact engine.
    pub adaptive_sweeps: bool,
    /// Incremental-SVD update paths (default off): permits
    /// [`crate::Accelerator::run_warm_f32`] to seed the iteration from a
    /// cached right basis. Functional-only — the knob never changes what
    /// a cold [`crate::Accelerator::run`] computes (off is bit-identical
    /// to a build that predates the knob), so it is *not* part of the
    /// plan-cache fingerprint.
    pub incremental: bool,
    /// Model §IV-C cross-batch pipelining in system-time projections:
    /// after the first wave, each wave's DDR load overlaps the previous
    /// wave's compute. Default off, preserving Eq. (14) exactness.
    pub cross_batch_pipelining: bool,
    /// Co-residency class: how many tenant pipelines share the device's
    /// PL/NoC interfaces *concurrently* with this one (default 1 — the
    /// whole-array assumption every pre-packing plan made). Unlike
    /// `task_parallelism` (a pure Eq. 14 divisor that assumes each
    /// pipeline sees an empty device), co-residency feeds the shared
    /// interface bandwidth model: PLIO transfers are throttled as if
    /// `co_residency` port groups stream through the Eq. 8 interface
    /// caps together, and the Eq. 12 first-iteration DDR loads (and the
    /// result store) split the controller's bandwidth `co_residency`
    /// ways. Functional arithmetic never reads this knob, so factors
    /// are bit-identical across classes; modeled timing is not, which
    /// is why the class is part of the plan-cache fingerprint.
    pub co_residency: usize,
    /// Observability (default on): emit per-iteration spans into the
    /// global [`crate::obs`] journal and attach a per-run
    /// [`crate::obs::UtilizationReport`] to the output. Purely
    /// observational — modeled timing, stats, and traces are
    /// bit-identical with the knob on or off — and allocation-free on
    /// the sweep hot path (the journal ring is preallocated; sampled-out
    /// spans cost two atomic ops).
    pub observability: bool,
    /// Target device (geometry, budgets, tile memory; default VCK190).
    pub device: DeviceProfile,
    /// Timing calibration.
    pub calibration: Calibration,
}

impl HeteroSvdConfig {
    /// Starts building a configuration for an `rows × cols` problem.
    pub fn builder(rows: usize, cols: usize) -> HeteroSvdConfigBuilder {
        HeteroSvdConfigBuilder::new(rows, cols)
    }

    /// Number of column blocks (`p = n / P_eng`).
    pub fn num_blocks(&self) -> usize {
        self.cols / self.engine_parallelism
    }

    /// Number of block pairs per iteration (`num` in Eq. 11–13).
    pub fn num_block_pairs(&self) -> usize {
        let p = self.num_blocks();
        p * (p.saturating_sub(1)) / 2
    }

    /// Bytes of one fp32 column.
    pub fn column_bytes(&self) -> usize {
        self.rows * 4
    }

    /// The target device's AIE array geometry.
    pub fn geometry(&self) -> ArrayGeometry {
        self.device.geometry
    }

    /// The worker-thread count the functional hot path actually uses:
    /// capped at `P_eng` (a layer has at most `P_eng` independent
    /// pairs), forced to 1 outside functional fidelity (timing-only
    /// runs perform no rotations worth parallelizing), and auto-degraded
    /// to the serial path on single-hardware-thread hosts.
    pub fn effective_functional_workers(&self) -> usize {
        self.effective_functional_workers_on(svd_kernels::parallel::available_workers())
    }

    /// [`HeteroSvdConfig::effective_functional_workers`] for a host
    /// reporting `host_threads` hardware threads (factored out so the
    /// degrade policy is testable on any machine). With one hardware
    /// thread the `RotationPool` only adds claim/wake overhead while its
    /// workers time-slice a single core — measurably slower than serial
    /// (BENCH_hotpath.json) — so such hosts always get the serial path.
    pub fn effective_functional_workers_on(&self, host_threads: usize) -> usize {
        if self.fidelity != FidelityMode::Functional || host_threads <= 1 {
            return 1;
        }
        self.functional_parallelism
            .min(self.engine_parallelism)
            .max(1)
    }
}

/// Builder for [`HeteroSvdConfig`] (see [`HeteroSvdConfig::builder`]).
#[derive(Debug, Clone)]
pub struct HeteroSvdConfigBuilder {
    rows: usize,
    cols: usize,
    engine_parallelism: usize,
    task_parallelism: usize,
    pl_freq_mhz: Option<f64>,
    ordering: OrderingKind,
    dataflow: DataflowKind,
    precision: f64,
    max_iterations: usize,
    fixed_iterations: Option<usize>,
    fidelity: FidelityMode,
    record_trace: bool,
    functional_parallelism: Option<usize>,
    timing_replay: bool,
    adaptive_sweeps: bool,
    incremental: bool,
    cross_batch_pipelining: bool,
    co_residency: usize,
    observability: bool,
    device: DeviceProfile,
    calibration: Calibration,
}

impl HeteroSvdConfigBuilder {
    fn new(rows: usize, cols: usize) -> Self {
        HeteroSvdConfigBuilder {
            rows,
            cols,
            engine_parallelism: 4,
            task_parallelism: 1,
            pl_freq_mhz: None,
            ordering: OrderingKind::ShiftingRing,
            dataflow: DataflowKind::Relocated,
            precision: 1e-6,
            max_iterations: 30,
            fixed_iterations: None,
            fidelity: FidelityMode::Functional,
            record_trace: false,
            functional_parallelism: None,
            timing_replay: true,
            adaptive_sweeps: true,
            incremental: false,
            cross_batch_pipelining: false,
            co_residency: 1,
            observability: true,
            device: DeviceProfile::VCK190,
            calibration: Calibration::DEFAULT,
        }
    }

    /// Sets `P_eng` (orth-AIEs per layer / columns per block).
    pub fn engine_parallelism(mut self, p_eng: usize) -> Self {
        self.engine_parallelism = p_eng;
        self
    }

    /// Sets `P_task` (parallel task pipelines).
    pub fn task_parallelism(mut self, p_task: usize) -> Self {
        self.task_parallelism = p_task;
        self
    }

    /// Overrides the PL clock in MHz (default: the design's achievable
    /// frequency from [`PlModel::achievable_frequency`]).
    pub fn pl_freq_mhz(mut self, mhz: f64) -> Self {
        self.pl_freq_mhz = Some(mhz);
        self
    }

    /// Selects the SVD ordering (default: shifting ring).
    pub fn ordering(mut self, ordering: OrderingKind) -> Self {
        self.ordering = ordering;
        self
    }

    /// Selects the output dataflow (default: relocated).
    pub fn dataflow(mut self, dataflow: DataflowKind) -> Self {
        self.dataflow = dataflow;
        self
    }

    /// Sets the convergence threshold (default `1e-6`).
    pub fn precision(mut self, precision: f64) -> Self {
        self.precision = precision;
        self
    }

    /// Caps adaptive convergence at `max_iterations` (default 30).
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Runs exactly `iters` outer iterations (the paper's fixed-six
    /// protocol for Tables II/VI).
    pub fn fixed_iterations(mut self, iters: usize) -> Self {
        self.fixed_iterations = Some(iters);
        self
    }

    /// Sets the simulation fidelity (default functional).
    pub fn fidelity(mut self, fidelity: FidelityMode) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Records a per-pass execution trace in the output (default off;
    /// costs memory proportional to passes × iterations).
    pub fn record_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Sets the host-side worker count for functional-mode rotations
    /// (default: available parallelism; `1` = serial). Must be `>= 1`.
    /// Any setting produces bit-identical results.
    pub fn functional_parallelism(mut self, workers: usize) -> Self {
        self.functional_parallelism = Some(workers);
        self
    }

    /// Enables or disables timing replay (default on). Disabling forces
    /// full `Timeline` re-simulation every run — useful for equivalence
    /// tests and for measuring what replay saves.
    pub fn timing_replay(mut self, replay: bool) -> Self {
        self.timing_replay = replay;
        self
    }

    /// Enables or disables the convergence-adaptive sweep engine
    /// (default on). Only host-side functional compute is affected:
    /// modeled timing, stats, and traces are bit-identical either way.
    /// Turn it off to force the exact engine (every pair's rotation
    /// computed and applied every visit) — useful for golden-model
    /// comparisons and for measuring what the gating saves.
    pub fn adaptive_sweeps(mut self, adaptive: bool) -> Self {
        self.adaptive_sweeps = adaptive;
        self
    }

    /// Enables the incremental-SVD update paths (default off): permits
    /// warm-started runs seeded from a cached right basis. Cold runs
    /// never read the knob, so `incremental(false)` is bit-identical to
    /// today's path, and the knob never enters the plan-cache key.
    pub fn incremental(mut self, enabled: bool) -> Self {
        self.incremental = enabled;
        self
    }

    /// Enables the §IV-C cross-batch pipelining overlap term in
    /// system-time projections (default off: plain Eq. 14).
    pub fn cross_batch_pipelining(mut self, enabled: bool) -> Self {
        self.cross_batch_pipelining = enabled;
        self
    }

    /// Sets the co-residency class (default 1): the number of tenant
    /// pipelines sharing the PLIO/DDR interfaces concurrently with this
    /// one. Must be `>= 1`. Modeled timing is contention-scaled per
    /// class; functional results are bit-identical across classes.
    pub fn co_residency(mut self, tenants: usize) -> Self {
        self.co_residency = tenants;
        self
    }

    /// Enables or disables observability (default on): span emission
    /// into the global journal plus the per-run utilization report.
    /// Modeled timing, stats, and traces are bit-identical either way.
    pub fn observability(mut self, enabled: bool) -> Self {
        self.observability = enabled;
        self
    }

    /// Targets a different device profile (default VCK190; see
    /// [`DeviceProfile::VE2802_ESTIMATE`] for the AIE-ML porting study).
    pub fn device(mut self, device: DeviceProfile) -> Self {
        self.device = device;
        self
    }

    /// Overrides the timing calibration.
    pub fn calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HeteroSvdError::InvalidConfig`] when:
    /// * `rows < cols` (the one-sided method needs tall matrices),
    /// * `cols` is not a positive multiple of `2 · P_eng` (a block pair
    ///   must consist of two full blocks),
    /// * `P_eng ∉ [1, 11]` or `P_task ∉ [1, 26]` (Table I),
    /// * the precision is not positive, or
    /// * timing-only fidelity is requested without `fixed_iterations`.
    pub fn build(self) -> Result<HeteroSvdConfig, HeteroSvdError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(HeteroSvdError::InvalidConfig(
                "matrix dimensions must be positive".into(),
            ));
        }
        if self.rows < self.cols {
            return Err(HeteroSvdError::InvalidConfig(format!(
                "one-sided jacobi requires rows >= cols, got {}x{}",
                self.rows, self.cols
            )));
        }
        if self.engine_parallelism == 0 || self.engine_parallelism > MAX_ENGINE_PARALLELISM {
            return Err(HeteroSvdError::InvalidConfig(format!(
                "engine parallelism must be in [1, {MAX_ENGINE_PARALLELISM}], got {}",
                self.engine_parallelism
            )));
        }
        if self.task_parallelism == 0 || self.task_parallelism > MAX_TASK_PARALLELISM {
            return Err(HeteroSvdError::InvalidConfig(format!(
                "task parallelism must be in [1, {MAX_TASK_PARALLELISM}], got {}",
                self.task_parallelism
            )));
        }
        if !self.cols.is_multiple_of(2 * self.engine_parallelism) {
            return Err(HeteroSvdError::InvalidConfig(format!(
                "columns ({}) must be a multiple of 2*P_eng ({})",
                self.cols,
                2 * self.engine_parallelism
            )));
        }
        if self.precision.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(HeteroSvdError::InvalidConfig(
                "precision must be positive".into(),
            ));
        }
        if self.fidelity == FidelityMode::TimingOnly && self.fixed_iterations.is_none() {
            return Err(HeteroSvdError::InvalidConfig(
                "timing-only fidelity requires fixed_iterations".into(),
            ));
        }
        if let Some(0) = self.fixed_iterations {
            return Err(HeteroSvdError::InvalidConfig(
                "fixed_iterations must be at least 1".into(),
            ));
        }
        if let Some(0) = self.functional_parallelism {
            return Err(HeteroSvdError::InvalidConfig(
                "functional_parallelism must be at least 1".into(),
            ));
        }
        if self.co_residency == 0 {
            return Err(HeteroSvdError::InvalidConfig(
                "co_residency must be at least 1".into(),
            ));
        }

        let pl_model = PlModel::new(self.calibration);
        let pl_freq = match self.pl_freq_mhz {
            Some(mhz) => {
                if !(mhz.is_finite() && mhz > 0.0) {
                    return Err(HeteroSvdError::InvalidConfig(
                        "PL frequency must be positive".into(),
                    ));
                }
                Frequency::from_mhz(mhz)
            }
            None => pl_model.achievable_frequency(self.cols, self.task_parallelism),
        };

        Ok(HeteroSvdConfig {
            rows: self.rows,
            cols: self.cols,
            engine_parallelism: self.engine_parallelism,
            task_parallelism: self.task_parallelism,
            pl_freq,
            ordering: self.ordering,
            dataflow: self.dataflow,
            precision: self.precision,
            max_iterations: self.max_iterations,
            fixed_iterations: self.fixed_iterations,
            fidelity: self.fidelity,
            record_trace: self.record_trace,
            functional_parallelism: self
                .functional_parallelism
                .unwrap_or_else(svd_kernels::parallel::available_workers),
            timing_replay: self.timing_replay,
            adaptive_sweeps: self.adaptive_sweeps,
            incremental: self.incremental,
            cross_batch_pipelining: self.cross_batch_pipelining,
            co_residency: self.co_residency,
            observability: self.observability,
            device: self.device,
            calibration: self.calibration,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_succeeds() {
        let c = HeteroSvdConfig::builder(128, 128).build().unwrap();
        assert_eq!(c.engine_parallelism, 4);
        assert_eq!(c.task_parallelism, 1);
        assert_eq!(c.num_blocks(), 32);
        assert_eq!(c.num_block_pairs(), 32 * 31 / 2);
        assert_eq!(c.column_bytes(), 512);
        // Default PL clock comes from the achievable-frequency model.
        assert!((c.pl_freq.mhz() - 450.0).abs() < 1.0);
    }

    #[test]
    fn explicit_frequency_is_respected() {
        let c = HeteroSvdConfig::builder(128, 128)
            .pl_freq_mhz(208.3)
            .build()
            .unwrap();
        assert!((c.pl_freq.mhz() - 208.3).abs() < 1e-9);
    }

    #[test]
    fn rejects_wide_matrices() {
        let err = HeteroSvdConfig::builder(64, 128).build().unwrap_err();
        assert!(matches!(err, HeteroSvdError::InvalidConfig(_)));
    }

    #[test]
    fn rejects_bad_blocking() {
        // 100 columns with P_eng=8 -> 2*8=16 does not divide 100.
        let err = HeteroSvdConfig::builder(100, 100)
            .engine_parallelism(8)
            .build()
            .unwrap_err();
        assert!(matches!(err, HeteroSvdError::InvalidConfig(_)));
    }

    #[test]
    fn rejects_out_of_range_parallelism() {
        assert!(HeteroSvdConfig::builder(128, 128)
            .engine_parallelism(12)
            .build()
            .is_err());
        assert!(HeteroSvdConfig::builder(128, 128)
            .engine_parallelism(0)
            .build()
            .is_err());
        assert!(HeteroSvdConfig::builder(128, 128)
            .task_parallelism(27)
            .build()
            .is_err());
    }

    #[test]
    fn timing_only_requires_fixed_iterations() {
        let err = HeteroSvdConfig::builder(128, 128)
            .fidelity(FidelityMode::TimingOnly)
            .build()
            .unwrap_err();
        assert!(matches!(err, HeteroSvdError::InvalidConfig(_)));

        assert!(HeteroSvdConfig::builder(128, 128)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(6)
            .build()
            .is_ok());
    }

    #[test]
    fn rejects_zero_fixed_iterations_and_bad_precision() {
        assert!(HeteroSvdConfig::builder(128, 128)
            .fixed_iterations(0)
            .build()
            .is_err());
        assert!(HeteroSvdConfig::builder(128, 128)
            .precision(0.0)
            .build()
            .is_err());
        assert!(HeteroSvdConfig::builder(128, 128)
            .precision(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn functional_parallelism_defaults_and_validates() {
        let c = HeteroSvdConfig::builder(128, 128).build().unwrap();
        assert!(c.functional_parallelism >= 1);
        let c = HeteroSvdConfig::builder(128, 128)
            .functional_parallelism(3)
            .build()
            .unwrap();
        assert_eq!(c.functional_parallelism, 3);
        // Capped at P_eng = 4 for the effective count, never below 1.
        assert_eq!(c.effective_functional_workers_on(8), 3);
        let wide = HeteroSvdConfig::builder(128, 128)
            .functional_parallelism(64)
            .build()
            .unwrap();
        assert_eq!(wide.effective_functional_workers_on(8), 4);
        let timing = HeteroSvdConfig::builder(128, 128)
            .functional_parallelism(64)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(6)
            .build()
            .unwrap();
        assert_eq!(timing.effective_functional_workers_on(8), 1);
        assert!(HeteroSvdConfig::builder(128, 128)
            .functional_parallelism(0)
            .build()
            .is_err());
    }

    #[test]
    fn single_thread_hosts_degrade_to_serial() {
        let c = HeteroSvdConfig::builder(128, 128)
            .functional_parallelism(4)
            .build()
            .unwrap();
        // One hardware thread: the pool would only add overhead.
        assert_eq!(c.effective_functional_workers_on(1), 1);
        assert_eq!(c.effective_functional_workers_on(2), 4);
        // The live query agrees with the pure policy for this host.
        assert_eq!(
            c.effective_functional_workers(),
            c.effective_functional_workers_on(svd_kernels::parallel::available_workers())
        );
    }

    #[test]
    fn replay_and_pipelining_knobs_default_and_build() {
        let c = HeteroSvdConfig::builder(128, 128).build().unwrap();
        assert!(c.timing_replay);
        assert!(c.adaptive_sweeps);
        assert!(!c.incremental);
        assert!(!c.cross_batch_pipelining);
        assert!(c.observability);
        let c = HeteroSvdConfig::builder(128, 128)
            .timing_replay(false)
            .adaptive_sweeps(false)
            .incremental(true)
            .cross_batch_pipelining(true)
            .observability(false)
            .build()
            .unwrap();
        assert!(!c.timing_replay);
        assert!(!c.adaptive_sweeps);
        assert!(c.incremental);
        assert!(c.cross_batch_pipelining);
        assert!(!c.observability);
    }

    #[test]
    fn co_residency_defaults_to_single_tenant_and_validates() {
        let c = HeteroSvdConfig::builder(128, 128).build().unwrap();
        assert_eq!(c.co_residency, 1);
        let c = HeteroSvdConfig::builder(128, 128)
            .co_residency(4)
            .build()
            .unwrap();
        assert_eq!(c.co_residency, 4);
        assert!(HeteroSvdConfig::builder(128, 128)
            .co_residency(0)
            .build()
            .is_err());
    }

    #[test]
    fn rectangular_matrices_supported() {
        let c = HeteroSvdConfig::builder(256, 64)
            .engine_parallelism(4)
            .build()
            .unwrap();
        assert_eq!(c.num_blocks(), 16);
        assert_eq!(c.column_bytes(), 1024);
    }
}
