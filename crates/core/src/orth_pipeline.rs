//! The orthogonalization pipeline: block pairs streaming through the
//! orth-AIE layers (Algorithm 1 lines 4–16; pipeline model of Fig. 7).
//!
//! Each block-pair pass:
//!
//! 1. **Tx** — the `2k` columns stream from the PL sender FIFOs through
//!    the four input PLIOs (dynamic-forwarding packets, one per column).
//! 2. **Layers** — the pass flows through the `2k−1` orth-layers. Between
//!    layers, columns move per the ordering's movement pattern; neighbor
//!    accesses cost a lock hand-off, DMA transfers serialize on the
//!    layer's DMA channel and occupy a doubled buffer. Band-break
//!    transitions (across placement bands) route through a mem-layer:
//!    every column pays a double DMA hop.
//! 3. **Rx** — updated columns return to the PL receiver FIFOs over the
//!    two output PLIOs; the blocks become available for their next pass.
//!
//! Passes pipeline freely until a round-robin dependency forces a stall
//! (a block's next pass cannot start before its previous Rx completes) —
//! the `t_algo`/`t_datawait` effects of Eq. (10)–(11) emerge from this
//! dependency tracking rather than being bolted on.
//!
//! # Hot-path memory discipline
//!
//! `run_pass` executes once per block pair per iteration — hundreds of
//! thousands of times in a large factorization — so it must not touch
//! the allocator. Everything a pass needs is prepared once:
//!
//! * immutable plan data (schedule, movement classification, port maps,
//!   cost models) lives in the shared [`PlanHandle`] and is *borrowed*,
//!   never cloned, per layer;
//! * mutable scratch (`col_avail`, `prev_end`, `slot_ready`,
//!   `layer_end`, pair/column/convergence buffers) lives in
//!   [`PassScratch`], sized at construction and reused via
//!   `clear()`/overwrite every pass;
//! * all transfer/kernel durations depend only on the configuration, so
//!   they are computed once in [`OrthPipeline::new`].
//!
//! The steady-state pass therefore performs zero heap allocations (the
//! counting-allocator test in `tests/zero_alloc.rs` enforces this).

use crate::config::{FidelityMode, HeteroSvdConfig};
use crate::plan_cache::{PlanHandle, StepKind};
use crate::replay::TimingProfile;
use aie_sim::plio::PlioDirection;
use aie_sim::stats::SimStats;
use aie_sim::time::TimePs;
use aie_sim::timeline::Timeline;
use std::sync::Arc;
use svd_kernels::adaptive::{did_rotate, AdaptiveState};
use svd_kernels::parallel::{
    orthogonalize_pairs_serial, orthogonalize_pairs_serial_adaptive, RotationPool,
};
use svd_kernels::Matrix;

/// One block-pair pass in the execution trace (enabled with
/// [`crate::HeteroSvdConfigBuilder::record_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PassRecord {
    /// Outer iteration index.
    pub iteration: usize,
    /// Pass index within the iteration.
    pub pass: usize,
    /// The block pair processed.
    pub blocks: (usize, usize),
    /// When the pass's Tx became eligible (both blocks ready).
    pub ready: TimePs,
    /// When both blocks were back in the PL FIFOs.
    pub end: TimePs,
}

/// Result of one orthogonalization iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationOutcome {
    /// Wall-clock completion time of the iteration.
    pub end: TimePs,
    /// Largest Eq. (6) convergence measure observed (0 in timing-only).
    pub max_convergence: f64,
    /// Non-identity rotations applied (0 in timing-only).
    pub rotations: usize,
}

/// Reusable per-pass scratch, allocated once and recycled every pass.
#[derive(Debug)]
struct PassScratch {
    /// Tx completion time of each local column (len `2k`).
    col_avail: Vec<TimePs>,
    /// Completion time of each slot in the previous layer (len `k`).
    prev_end: Vec<TimePs>,
    /// Input-ready time of each slot in the current layer (len `k`).
    slot_ready: Vec<TimePs>,
    /// Completion time of each slot in the current layer (len `k`).
    layer_end: Vec<TimePs>,
    /// Global column indices of the current block pair (capacity `2k`).
    cols: Vec<usize>,
    /// Global column-index pairs of the current layer (capacity `k`).
    pairs: Vec<(usize, usize)>,
    /// Per-slot convergence values of the current layer (len `k`).
    conv: Vec<f32>,
    /// Dirty-column/pair-cache state of the convergence-adaptive engine
    /// (`None` with [`crate::HeteroSvdConfig::adaptive_sweeps`] off or
    /// outside functional fidelity). Sized once at construction — the
    /// steady-state pass stays allocation-free.
    adaptive: Option<AdaptiveState<f32>>,
}

/// Host-compute counters of the convergence-adaptive engine: how much
/// functional work the gating and the dirty-column cache avoided. Purely
/// observational — modeled timing and [`SimStats`] never depend on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct AdaptiveCounters {
    /// Visits answered from the pair cache (both columns untouched since
    /// a gated visit): even the dot products were skipped.
    pub memo_skips: u64,
    /// Visits that ran the dot products but skipped `compute_rotation`
    /// and the O(n) apply (measure below the sweep threshold).
    pub gated_rotations: u64,
}

/// The orth-stage simulator. One instance persists across iterations so
/// that resource timelines (and therefore pipelining) carry over.
#[derive(Debug)]
pub struct OrthPipeline<'a> {
    config: &'a HeteroSvdConfig,
    plan: &'a PlanHandle,
    plio_in: Vec<Timeline>,
    plio_out: Vec<Timeline>,
    cores: Vec<Timeline>,
    /// Per-(layer, slot) tile DMA channels (lateral DMA and band-break
    /// copies through the mem-layer tiles run in parallel across slots).
    dma_channels: Vec<Timeline>,
    /// Per-layer DMA-layer tile channel (the wraparound copy's landing
    /// buffer is a single dedicated mem-AIE per layer, §III-C).
    wrap_channels: Vec<Timeline>,
    /// Per-layer row stream-switch backbone: lateral DMA hops within a
    /// row share its bandwidth and serialize (the congestion the
    /// co-design eliminates).
    switch_channels: Vec<Timeline>,
    /// Time each block's data is available in the PL FIFOs.
    block_ready: Vec<TimePs>,
    /// Input PLIO port of each local column (precomputed, len `2k`).
    in_ports: Vec<usize>,
    /// Output PLIO port of each local column (precomputed, len `2k`).
    out_ports: Vec<usize>,
    /// Final-layer slot of each local column (precomputed, len `2k`).
    rx_slot: Vec<usize>,
    scratch: PassScratch,
    // Durations depend only on the configuration: computed once.
    tx_dur: TimePs,
    rx_dur: TimePs,
    orth_dur: TimePs,
    neighbor_dur: TimePs,
    lateral_dur: TimePs,
    wrap_dur: TimePs,
    break_dur: TimePs,
    hls_dur: TimePs,
    /// Numerical-noise gate for rotations (see
    /// [`svd_kernels::rotation::compute_rotation_gated`]).
    norm_floor_sq: f32,
    stats: SimStats,
    trace: Vec<PassRecord>,
    iterations_run: usize,
    /// Cached timing profile of this plan; when set and valid for the
    /// initial block-ready state, iterations replay it instead of
    /// re-scheduling every [`Timeline`].
    replay: Option<Arc<TimingProfile>>,
    /// Whether iterations replay from the profile, decided once at the
    /// first iteration (a run never switches live ↔ replay mid-flight:
    /// replay does not advance the timelines, so the live path could not
    /// resume from a replayed prefix).
    replay_active: bool,
}

impl<'a> OrthPipeline<'a> {
    /// Builds the pipeline for a validated configuration and its plan.
    pub fn new(config: &'a HeteroSvdConfig, plan: &'a PlanHandle) -> Self {
        let k = config.engine_parallelism;
        let layers = plan.placement.num_layers();
        let m_bytes = config.column_bytes();
        let plio_plan = plan.plio_plan;
        // Interface contention (Eq. 8–10 under co-residency): the 32/24
        // GB/s directional caps are per interface *group* — one task
        // pipeline's port set — not array-global (see
        // [`aie_sim::plio`]; it is how the paper's 26 parallel task
        // pipelines scale linearly in Table VI). A co-resident tenant's
        // full-height stripe sits over its own AIE–PL interface columns
        // and owns a disjoint PLIO lane block
        // ([`crate::routing::assign_tenant_lanes`]), so each tenant
        // throttles only against its own group cap: `active_ports` is
        // the tenant's own port count regardless of `co_residency`.
        // Cross-tenant contention is carried by the shared NoC/DDR path
        // instead (`DdrModel::contended_burst_time` splits sustained
        // bandwidth `co_residency` ways on initial block loads and the
        // result store).
        let active_ports = plio_plan.orth_in;
        let in_ports: Vec<usize> = (0..2 * k)
            .map(|c| plio_plan.input_port_of_column(c, k))
            .collect();
        let out_ports: Vec<usize> = (0..2 * k)
            .map(|c| plio_plan.output_port_of_column(c, k))
            .collect();
        let mut rx_slot = vec![0usize; 2 * k];
        let last_layer = plan
            .schedule
            .layers()
            .last()
            .expect("k >= 1 guarantees layers");
        for (s, &(i, j)) in last_layer.pairs_by_slot.iter().enumerate() {
            rx_slot[i] = s;
            rx_slot[j] = s;
        }
        OrthPipeline {
            config,
            plan,
            plio_in: vec![Timeline::new(); plio_plan.orth_in],
            plio_out: vec![Timeline::new(); plio_plan.orth_out],
            cores: vec![Timeline::new(); layers * k],
            dma_channels: vec![Timeline::new(); layers.max(1) * k],
            wrap_channels: vec![Timeline::new(); layers.max(1)],
            switch_channels: vec![Timeline::new(); layers.max(1)],
            block_ready: vec![TimePs::ZERO; plan.partition.num_blocks()],
            in_ports,
            out_ports,
            rx_slot,
            scratch: PassScratch {
                col_avail: vec![TimePs::ZERO; 2 * k],
                prev_end: vec![TimePs::ZERO; k],
                slot_ready: vec![TimePs::ZERO; k],
                layer_end: vec![TimePs::ZERO; k],
                cols: Vec::with_capacity(2 * k),
                pairs: Vec::with_capacity(k),
                conv: vec![0.0; k],
                adaptive: (config.adaptive_sweeps && config.fidelity == FidelityMode::Functional)
                    .then(|| AdaptiveState::new(config.cols)),
            },
            tx_dur: plan.plio.throttled_transfer_time(
                m_bytes,
                1,
                PlioDirection::ToAie,
                active_ports,
            ),
            rx_dur: plan.plio.throttled_transfer_time(
                m_bytes,
                1,
                PlioDirection::ToPl,
                active_ports,
            ),
            orth_dur: plan.kernels.orth_time(config.rows),
            neighbor_dur: plan.kernels.neighbor_handoff_time(),
            // Route lengths: lateral DMA crosses one switch boundary; the
            // wraparound spans the band (k columns plus the DMA-layer
            // tile); band-break hops climb to the boundary mem-layer and
            // descend into the next band.
            lateral_dur: plan.dma.transfer_time_with_hops(m_bytes, 2),
            wrap_dur: plan.dma.transfer_time_with_hops(m_bytes, k as u64 + 1),
            break_dur: plan.dma.transfer_time_with_hops(m_bytes, 3),
            hls_dur: plan.pl.hls_overhead(1, config.pl_freq),
            norm_floor_sq: 0.0,
            stats: SimStats::new(),
            trace: Vec::new(),
            iterations_run: 0,
            replay: None,
            replay_active: false,
        }
    }

    /// Sets the initial availability of each block (the serialized DDR
    /// loads of the first iteration, Eq. 12).
    pub fn set_block_ready(&mut self, ready: Vec<TimePs>) {
        assert_eq!(ready.len(), self.block_ready.len(), "block count mismatch");
        self.block_ready = ready;
    }

    /// Sets the numerical-noise floor for rotation gating (computed from
    /// the input matrix; see [`Matrix::column_norm_floor_sq`]).
    pub fn set_norm_floor_sq(&mut self, floor_sq: f32) {
        self.norm_floor_sq = floor_sq;
    }

    /// Sets the adaptive engine's rotation threshold for the next
    /// iteration (the driver derives it from the previous iteration's
    /// convergence; see [`svd_kernels::adaptive::sweep_threshold`]).
    /// No-op when the adaptive engine is off; `0` keeps it inert.
    pub fn set_rotation_threshold(&mut self, threshold: f64) {
        if let Some(state) = self.scratch.adaptive.as_mut() {
            state.set_threshold(threshold as f32);
        }
    }

    /// The adaptive engine's skipped-work counters, `None` when it is
    /// off.
    pub fn adaptive_counters(&self) -> Option<AdaptiveCounters> {
        self.scratch.adaptive.as_ref().map(|s| AdaptiveCounters {
            memo_skips: s.memo_skips(),
            gated_rotations: s.gated_rotations(),
        })
    }

    /// Attaches a cached timing profile. Replay only activates if, at the
    /// first iteration, the pipeline's block-ready state equals the state
    /// the profile was probed from (anything else falls back to live
    /// simulation — attaching a profile can never change results).
    pub fn set_replay_profile(&mut self, profile: Arc<TimingProfile>) {
        assert_eq!(
            self.iterations_run, 0,
            "a profile must be attached before the first iteration"
        );
        self.replay = Some(profile);
    }

    /// Whether iterations are replaying the attached profile (meaningful
    /// after the first iteration has run).
    pub fn replay_active(&self) -> bool {
        self.replay_active
    }

    /// Snapshot of all mutable timing state: every block's ready time
    /// followed by every resource timeline's `available_at`. Two
    /// consecutive iterations whose signatures differ by one uniform
    /// shift prove the schedule is steady (see [`crate::replay`]).
    pub(crate) fn state_signature(&self) -> Vec<TimePs> {
        let timelines = self.plio_in.len()
            + self.plio_out.len()
            + self.cores.len()
            + self.dma_channels.len()
            + self.wrap_channels.len()
            + self.switch_channels.len();
        let mut sig = Vec::with_capacity(self.block_ready.len() + timelines);
        sig.extend(self.block_ready.iter().copied());
        for t in self
            .plio_in
            .iter()
            .chain(&self.plio_out)
            .chain(&self.cores)
            .chain(&self.dma_channels)
            .chain(&self.wrap_channels)
            .chain(&self.switch_channels)
        {
            sig.push(t.available_at());
        }
        sig
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Consumes the pipeline, returning its statistics.
    pub fn into_stats(self) -> SimStats {
        self.stats
    }

    /// The recorded execution trace (empty unless
    /// [`crate::HeteroSvdConfig::record_trace`] is set).
    pub fn trace(&self) -> &[PassRecord] {
        &self.trace
    }

    /// Consumes the pipeline, returning `(stats, trace)`.
    pub fn into_parts(self) -> (SimStats, Vec<PassRecord>) {
        (self.stats, self.trace)
    }

    /// Runs one full iteration over all block pairs, updating `b` in
    /// place when the fidelity is functional (serial rotations).
    pub fn run_iteration(&mut self, b: &mut Matrix<f32>) -> IterationOutcome {
        self.run_iteration_with(b, None)
    }

    /// [`OrthPipeline::run_iteration`] with an optional worker pool: a
    /// layer's independent rotations are distributed across the pool,
    /// producing bit-identical results to the serial path (disjoint
    /// columns; convergence reduced in slot order).
    pub fn run_iteration_with(
        &mut self,
        b: &mut Matrix<f32>,
        pool: Option<&RotationPool>,
    ) -> IterationOutcome {
        // Span bracketing is observational: the modeled clock below never
        // reads the wall clock, so the knob cannot perturb timing. The
        // journal's ring is preallocated and sampled-out spans are two
        // atomic ops, keeping the iteration allocation-free either way.
        let span_start = self.config.observability.then(std::time::Instant::now);
        if self.iterations_run == 0 {
            self.replay_active = self
                .replay
                .as_ref()
                .is_some_and(|p| p.initial_block_ready() == self.block_ready.as_slice());
        }
        let outcome = if self.replay_active {
            let profile = Arc::clone(self.replay.as_ref().expect("replay_active implies profile"));
            self.run_iteration_replay(&profile, b, pool)
        } else {
            self.run_iteration_live(b, pool)
        };
        if let Some(t0) = span_start {
            crate::obs::global().record(
                crate::obs::Stage::SimReplay,
                None,
                t0.elapsed(),
                Some(outcome.end),
            );
        }
        outcome
    }

    /// One fully live-simulated iteration (every `Timeline` scheduled).
    fn run_iteration_live(
        &mut self,
        b: &mut Matrix<f32>,
        pool: Option<&RotationPool>,
    ) -> IterationOutcome {
        let plan = self.plan;
        let mut max_conv = 0.0_f64;
        let mut rotations = 0usize;
        let mut iteration_end = self
            .block_ready
            .iter()
            .copied()
            .fold(TimePs::ZERO, TimePs::max);

        // Config validation guarantees cols % (2·P_eng) == 0, so there are
        // always at least two blocks.
        debug_assert!(plan.partition.num_blocks() >= 2, "block count must be >= 2");
        for (pass, (u, v)) in plan.pair_schedule.iter().enumerate() {
            let ready = self.block_ready[u].max(self.block_ready[v]);
            let end = self.run_pass(b, u, v, pool, &mut max_conv, &mut rotations);
            if self.config.record_trace {
                self.trace.push(PassRecord {
                    iteration: self.iterations_run,
                    pass,
                    blocks: (u, v),
                    ready,
                    end,
                });
            }
            iteration_end = iteration_end.max(end);
        }

        self.iterations_run += 1;
        self.stats.iterations += 1;
        IterationOutcome {
            end: iteration_end,
            max_convergence: max_conv,
            rotations,
        }
    }

    /// One iteration via the cached profile: the functional math still
    /// runs (same pass/layer/slot order as the live path, so results are
    /// bit-identical), but all timing — pass records, the iteration end,
    /// the stats delta — comes from O(1) profile lookups instead of
    /// `Timeline` scheduling. Zero allocations outside trace recording,
    /// like the live path.
    fn run_iteration_replay(
        &mut self,
        profile: &TimingProfile,
        b: &mut Matrix<f32>,
        pool: Option<&RotationPool>,
    ) -> IterationOutcome {
        let plan = self.plan;
        let iteration = self.iterations_run;
        let mut max_conv = 0.0_f64;
        let mut rotations = 0usize;

        if self.config.fidelity == FidelityMode::Functional {
            let layers = plan.placement.num_layers();
            for (u, v) in plan.pair_schedule.iter() {
                self.scratch.cols.clear();
                self.scratch.cols.extend(plan.partition.block_range(u));
                self.scratch.cols.extend(plan.partition.block_range(v));
                for layer in 0..layers {
                    let pairs = &plan.schedule.layers()[layer].pairs_by_slot;
                    self.scratch.pairs.clear();
                    for &(i, j) in pairs.iter() {
                        self.scratch
                            .pairs
                            .push((self.scratch.cols[i], self.scratch.cols[j]));
                    }
                    match (pool, self.scratch.adaptive.as_mut()) {
                        (Some(pool), Some(state)) => pool.execute_adaptive(
                            b,
                            &self.scratch.pairs,
                            self.norm_floor_sq,
                            &mut self.scratch.conv,
                            state,
                        ),
                        (Some(pool), None) => pool.execute(
                            b,
                            &self.scratch.pairs,
                            self.norm_floor_sq,
                            &mut self.scratch.conv,
                        ),
                        (None, Some(state)) => orthogonalize_pairs_serial_adaptive(
                            b,
                            &self.scratch.pairs,
                            self.norm_floor_sq,
                            &mut self.scratch.conv,
                            state,
                        ),
                        (None, None) => orthogonalize_pairs_serial(
                            b,
                            &self.scratch.pairs,
                            self.norm_floor_sq,
                            &mut self.scratch.conv,
                        ),
                    }
                    // Reduce in slot order, exactly like the live path.
                    // Without the adaptive state the threshold is 0 and
                    // `did_rotate` degenerates to the legacy `conv > 0`.
                    let threshold = self
                        .scratch
                        .adaptive
                        .as_ref()
                        .map_or(0.0, |s| s.threshold());
                    for &conv in &self.scratch.conv[..pairs.len()] {
                        if did_rotate(conv, threshold) {
                            rotations += 1;
                        }
                        let conv = conv as f64;
                        if conv > max_conv {
                            max_conv = conv;
                        }
                    }
                }
            }
        }

        if self.config.record_trace {
            profile.for_each_pass(iteration, |pass, p| {
                self.trace.push(PassRecord {
                    iteration,
                    pass,
                    blocks: p.blocks,
                    ready: p.ready,
                    end: p.end,
                });
            });
        }

        self.stats.accumulate(profile.iter_stats());
        self.iterations_run += 1;
        IterationOutcome {
            end: profile.iteration_end(iteration),
            max_convergence: max_conv,
            rotations,
        }
    }

    /// Streams one block pair through the array. Returns the time both
    /// blocks are back in the PL FIFOs.
    fn run_pass(
        &mut self,
        b: &mut Matrix<f32>,
        u: usize,
        v: usize,
        pool: Option<&RotationPool>,
        max_conv: &mut f64,
        rotations: &mut usize,
    ) -> TimePs {
        let plan = self.plan;
        let k = self.config.engine_parallelism;
        let m_bytes = self.config.column_bytes();
        let ready = self.block_ready[u].max(self.block_ready[v]);
        let functional = self.config.fidelity == FidelityMode::Functional;

        self.scratch.cols.clear();
        self.scratch.cols.extend(plan.partition.block_range(u));
        self.scratch.cols.extend(plan.partition.block_range(v));
        let num_cols = self.scratch.cols.len();

        // ---- Tx: PL -> AIE over the four input ports (Eq. 8). ----
        for local in 0..num_cols {
            let (_, end) = self.plio_in[self.in_ports[local]].schedule(ready, self.tx_dur);
            self.scratch.col_avail[local] = end;
            self.stats.plio_bytes_in += m_bytes;
            self.stats.plio_busy += self.tx_dur;
            self.stats.plio_transfers += 1;
        }

        // ---- Layers. ----
        let layers = plan.placement.num_layers();
        self.scratch.prev_end.fill(TimePs::ZERO);
        for layer in 0..layers {
            let pairs = &plan.schedule.layers()[layer].pairs_by_slot;

            if layer == 0 {
                for (s, &(i, j)) in pairs.iter().enumerate() {
                    self.scratch.slot_ready[s] =
                        self.scratch.col_avail[i].max(self.scratch.col_avail[j]);
                }
            } else {
                self.movement_ready(layer, m_bytes);
            }

            for s in 0..pairs.len() {
                let (_, end) =
                    self.cores[layer * k + s].schedule(self.scratch.slot_ready[s], self.orth_dur);
                self.scratch.layer_end[s] = end;
                self.stats.orth_invocations += 1;
                self.stats.orth_busy += self.orth_dur;
            }
            if functional {
                self.scratch.pairs.clear();
                for &(i, j) in pairs.iter() {
                    self.scratch
                        .pairs
                        .push((self.scratch.cols[i], self.scratch.cols[j]));
                }
                match (pool, self.scratch.adaptive.as_mut()) {
                    (Some(pool), Some(state)) => pool.execute_adaptive(
                        b,
                        &self.scratch.pairs,
                        self.norm_floor_sq,
                        &mut self.scratch.conv,
                        state,
                    ),
                    (Some(pool), None) => pool.execute(
                        b,
                        &self.scratch.pairs,
                        self.norm_floor_sq,
                        &mut self.scratch.conv,
                    ),
                    (None, Some(state)) => orthogonalize_pairs_serial_adaptive(
                        b,
                        &self.scratch.pairs,
                        self.norm_floor_sq,
                        &mut self.scratch.conv,
                        state,
                    ),
                    (None, None) => orthogonalize_pairs_serial(
                        b,
                        &self.scratch.pairs,
                        self.norm_floor_sq,
                        &mut self.scratch.conv,
                    ),
                }
                // Reduce in slot order so the serial and parallel paths
                // accumulate identically. Without the adaptive state the
                // threshold is 0 and `did_rotate` degenerates to the
                // legacy `conv > 0` count.
                let threshold = self
                    .scratch
                    .adaptive
                    .as_ref()
                    .map_or(0.0, |s| s.threshold());
                for &conv in &self.scratch.conv[..pairs.len()] {
                    if did_rotate(conv, threshold) {
                        *rotations += 1;
                    }
                    let conv = conv as f64;
                    if conv > *max_conv {
                        *max_conv = conv;
                    }
                }
            }
            std::mem::swap(&mut self.scratch.prev_end, &mut self.scratch.layer_end);
        }

        // ---- Rx: AIE -> PL over the two output ports. ----
        let mut block_u_end = TimePs::ZERO;
        let mut block_v_end = TimePs::ZERO;
        for local in 0..num_cols {
            let rx_ready = self.scratch.prev_end[self.rx_slot[local]];
            let (_, end) = self.plio_out[self.out_ports[local]].schedule(rx_ready, self.rx_dur);
            self.stats.plio_bytes_out += m_bytes;
            self.stats.plio_busy += self.rx_dur;
            self.stats.plio_transfers += 1;
            if local < k {
                block_u_end = block_u_end.max(end);
            } else {
                block_v_end = block_v_end.max(end);
            }
        }

        // HLS loop-switch overhead when the receiver hands the blocks back
        // to the arrangement module (t_hls contribution per pass).
        self.block_ready[u] = block_u_end + self.hls_dur;
        self.block_ready[v] = block_v_end + self.hls_dur;
        self.block_ready[u].max(self.block_ready[v])
    }

    /// Computes each slot's input-ready time for the transition into
    /// `layer` from the plan's pre-classified movement table, scheduling
    /// DMA transfers on the appropriate channels.
    fn movement_ready(&mut self, layer: usize, m_bytes: usize) {
        let plan = self.plan;
        let k = self.config.engine_parallelism;
        self.scratch.slot_ready.fill(TimePs::ZERO);
        for step in &plan.movement[layer - 1] {
            let ready = self.scratch.prev_end[step.producer];
            let arrival = match step.kind {
                StepKind::BandBreak => {
                    // Through the mem-layer: two DMA hops (store + reload),
                    // parallel across the k mem-layer tiles.
                    let channel = layer * k + step.producer;
                    let (_, mid) = self.dma_channels[channel].schedule(ready, self.break_dur);
                    let (_, end) = self.dma_channels[channel].schedule(mid, self.break_dur);
                    self.stats.dma_transfers += 2;
                    self.stats.dma_bytes += 2 * m_bytes;
                    self.stats.dma_busy += self.break_dur + self.break_dur;
                    end
                }
                StepKind::Neighbor => {
                    self.stats.neighbor_accesses += 1;
                    ready + self.neighbor_dur
                }
                StepKind::Wrap => {
                    // Through the layer's DMA-layer tile.
                    let (_, end) = self.wrap_channels[layer].schedule(ready, self.wrap_dur);
                    self.stats.dma_transfers += 1;
                    self.stats.dma_bytes += m_bytes;
                    self.stats.dma_busy += self.wrap_dur;
                    end
                }
                StepKind::Lateral => {
                    // Lateral DMA: hops along the row's stream switch.
                    let (_, end) = self.switch_channels[layer].schedule(ready, self.lateral_dur);
                    self.stats.dma_transfers += 1;
                    self.stats.dma_bytes += m_bytes;
                    self.stats.dma_busy += self.lateral_dur;
                    end
                }
            };
            self.scratch.slot_ready[step.slot] = self.scratch.slot_ready[step.slot].max(arrival);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeteroSvdConfig;
    use svd_kernels::block::BlockPartition;
    use svd_orderings::movement::{DataflowKind, OrderingKind};

    fn config(n: usize, p_eng: usize) -> HeteroSvdConfig {
        HeteroSvdConfig::builder(n, n)
            .engine_parallelism(p_eng)
            .pl_freq_mhz(208.3)
            .build()
            .unwrap()
    }

    fn run_one(config: &HeteroSvdConfig, b: &mut Matrix<f32>) -> (IterationOutcome, SimStats) {
        let plan = PlanHandle::build(config).unwrap();
        let mut pipe = OrthPipeline::new(config, &plan);
        let out = pipe.run_iteration(b);
        (out, pipe.into_stats())
    }

    fn sample(n: usize) -> Matrix<f32> {
        Matrix::from_fn(n, n, |r, c| {
            (((r * 31 + c * 17 + 3) % 13) as f32) / 3.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
        })
    }

    #[test]
    fn iteration_reduces_convergence() {
        let cfg = config(16, 2);
        let mut b = sample(16);
        let plan = PlanHandle::build(&cfg).unwrap();
        let mut pipe = OrthPipeline::new(&cfg, &plan);
        let first = pipe.run_iteration(&mut b);
        let mut later = first;
        for _ in 0..4 {
            later = pipe.run_iteration(&mut b);
        }
        assert!(first.max_convergence > 0.0);
        assert!(
            later.max_convergence < first.max_convergence,
            "{} -> {}",
            first.max_convergence,
            later.max_convergence
        );
    }

    #[test]
    fn time_advances_monotonically() {
        let cfg = config(16, 2);
        let mut b = sample(16);
        let plan = PlanHandle::build(&cfg).unwrap();
        let mut pipe = OrthPipeline::new(&cfg, &plan);
        let t1 = pipe.run_iteration(&mut b).end;
        let t2 = pipe.run_iteration(&mut b).end;
        assert!(t2 > t1);
        assert!(t1 > TimePs::ZERO);
    }

    #[test]
    fn codesign_produces_fewer_dmas_than_naive() {
        // k = 3 keeps the 5 orth-layers in a single band, so no band-break
        // DMA clouds the comparison: per pass, ring+naive needs 2k(k-1)=12
        // DMAs and the co-design 2(k-1)=4 — a 3x reduction.
        let mut naive_cfg = config(24, 3);
        naive_cfg.ordering = OrderingKind::Ring;
        naive_cfg.dataflow = DataflowKind::NaiveMemory;
        let codesign_cfg = config(24, 3);

        let (_, naive_stats) = run_one(&naive_cfg, &mut sample(24));
        let (_, codesign_stats) = run_one(&codesign_cfg, &mut sample(24));
        assert_eq!(naive_stats.dma_transfers, 3 * codesign_stats.dma_transfers);
        let passes = naive_cfg.num_block_pairs();
        assert_eq!(naive_stats.dma_transfers, passes * 12);
        assert_eq!(codesign_stats.dma_transfers, passes * 4);
    }

    #[test]
    fn codesign_is_faster_than_naive() {
        let mut naive_cfg = config(32, 4);
        naive_cfg.ordering = OrderingKind::Ring;
        naive_cfg.dataflow = DataflowKind::NaiveMemory;
        let codesign_cfg = config(32, 4);

        let (naive, _) = run_one(&naive_cfg, &mut sample(32));
        let (codesign, _) = run_one(&codesign_cfg, &mut sample(32));
        assert!(
            codesign.end < naive.end,
            "codesign {} vs naive {}",
            codesign.end,
            naive.end
        );
    }

    #[test]
    fn dma_counts_match_movement_analysis() {
        // Single-band placement (k=2 -> 3 layers), one block pair per
        // iteration pass set: DMA per pass must equal the per-pass
        // analysis formula.
        let cfg = config(16, 2);
        let plan = PlanHandle::build(&cfg).unwrap();
        assert_eq!(plan.placement.num_bands(), 1);
        let (_, stats) = run_one(&cfg, &mut sample(16));
        let passes = cfg.num_block_pairs();
        let per_pass = svd_orderings::movement::codesign_dma_count(2);
        assert_eq!(stats.dma_transfers, passes * per_pass);
    }

    #[test]
    fn stats_count_invocations_and_bytes() {
        let cfg = config(16, 2);
        let (_, stats) = run_one(&cfg, &mut sample(16));
        let passes = cfg.num_block_pairs(); // p=8 blocks -> 28 passes
        let pairs_per_pass = 2 * (2 * 2 - 1); // k(2k-1) = 6
        assert_eq!(stats.orth_invocations, passes * pairs_per_pass);
        // Every pass moves 2k columns in and out.
        assert_eq!(stats.plio_bytes_in, passes * 4 * 16 * 4);
        assert_eq!(stats.plio_bytes_out, stats.plio_bytes_in);
    }

    #[test]
    fn trace_records_every_pass_and_shows_pipelining() {
        let mut cfg = config(16, 2);
        cfg.record_trace = true;
        let plan = PlanHandle::build(&cfg).unwrap();
        let mut pipe = OrthPipeline::new(&cfg, &plan);
        let mut b = sample(16);
        pipe.run_iteration(&mut b);
        pipe.run_iteration(&mut b);
        let trace = pipe.trace();
        assert_eq!(trace.len(), 2 * cfg.num_block_pairs());
        // Pass ends are strictly increasing in schedule order.
        for w in trace.windows(2) {
            assert!(w[1].end > w[0].end);
        }
        // Pipelining: some pass becomes ready before its predecessor ends.
        let overlapped = trace.windows(2).any(|w| w[1].ready < w[0].end);
        assert!(overlapped, "expected overlapping passes in the pipeline");
        // Iteration indices recorded.
        assert_eq!(trace.first().unwrap().iteration, 0);
        assert_eq!(trace.last().unwrap().iteration, 1);
    }

    #[test]
    fn trace_is_empty_when_disabled() {
        let cfg = config(16, 2);
        let plan = PlanHandle::build(&cfg).unwrap();
        let mut pipe = OrthPipeline::new(&cfg, &plan);
        pipe.run_iteration(&mut sample(16));
        assert!(pipe.trace().is_empty());
    }

    #[test]
    fn functional_matches_software_block_jacobi() {
        // One hardware iteration must produce the same matrix as one
        // software block-Jacobi iteration (same pair order, same math).
        let cfg = config(16, 2);
        let mut hw = sample(16);
        run_one(&cfg, &mut hw);

        let mut sw = sample(16);
        let floor = sw.column_norm_floor_sq();
        let partition = BlockPartition::new(16, 2).unwrap();
        let schedule = svd_kernels::block::BlockPairSchedule::round_robin(8);
        for (u, v) in schedule.iter() {
            let cols = partition.pair_columns(u, v);
            svd_kernels::block::orthogonalize_column_set(&mut sw, &cols, floor);
        }
        for c in 0..16 {
            for r in 0..16 {
                let d = (hw[(r, c)] - sw[(r, c)]).abs();
                assert!(d < 1e-6, "mismatch at ({r},{c}): {d}");
            }
        }
    }

    #[test]
    fn parallel_iteration_is_bit_identical_to_serial() {
        let cfg = config(24, 3);
        let plan = PlanHandle::build(&cfg).unwrap();

        let mut serial = sample(24);
        let mut pipe_s = OrthPipeline::new(&cfg, &plan);
        let out_s = pipe_s.run_iteration(&mut serial);

        let mut pooled = sample(24);
        let mut pipe_p = OrthPipeline::new(&cfg, &plan);
        let out_p = svd_kernels::parallel::with_pool(3, |pool| {
            pipe_p.run_iteration_with(&mut pooled, Some(pool))
        });

        assert_eq!(serial.as_slice(), pooled.as_slice());
        assert_eq!(out_s, out_p);
        assert_eq!(pipe_s.stats(), pipe_p.stats());
    }
}
