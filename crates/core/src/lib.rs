#![warn(missing_docs)]

//! HeteroSVD: a block-Jacobi SVD accelerator on the (simulated) Versal
//! ACAP — reproduction of the DAC 2025 paper's primary contribution.
//!
//! The accelerator executes Algorithm 1 of the paper: a large matrix is
//! split into column blocks; block pairs stream from PL FIFOs through an
//! array of orthogonalization AIEs arranged as `2k−1` layers of `k`
//! orth-AIEs (the shifting ring ordering, §III-B); once the convergence
//! rate of Eq. (6) drops below the target precision, a normalization stage
//! (norm-AIEs) produces `Σ` and `U` (Eq. 7).
//!
//! Because the real hardware is unavailable, the accelerator runs on the
//! [`aie_sim`] substrate: the arithmetic is performed for real in `f32`
//! (so results are numerically genuine and checked against the `f64`
//! golden model), while transfers and kernel invocations are scheduled
//! onto resource timelines to produce cycle-approximate latency, DMA, and
//! utilization statistics.
//!
//! # Quickstart
//!
//! ```
//! use heterosvd::{Accelerator, HeteroSvdConfig};
//! use svd_kernels::Matrix;
//!
//! # fn main() -> Result<(), heterosvd::HeteroSvdError> {
//! let a = Matrix::from_fn(32, 32, |r, c| ((r * 7 + c * 3) % 11) as f64 - 5.0);
//! let config = HeteroSvdConfig::builder(32, 32)
//!     .engine_parallelism(4)
//!     .build()?;
//! let out = Accelerator::new(config)?.run(&a)?;
//! assert!(out.result.reconstruction_error(&a.cast()) < 1e-4);
//! println!("latency = {} ms", out.timing.task_time.as_millis());
//! # Ok(())
//! # }
//! ```

pub mod accelerator;
pub mod apply;
pub mod batch_pool;
pub mod config;
pub mod energy;
pub mod factor_cache;
pub mod norm_pipeline;
pub mod obs;
pub mod orth_pipeline;
pub mod pl_modules;
pub mod placement;
pub mod plan_cache;
pub mod render;
pub mod replay;
pub mod routing;
pub mod svd;
pub mod timing;

mod error;

pub use accelerator::{Accelerator, HeteroSvdOutput, WarmStartCounters};
pub use apply::{ApplyModel, ApplyProfile, ApplyProfileCache, ApplyShape, ApplyTiming};
pub use batch_pool::BatchPool;
pub use config::{FidelityMode, HeteroSvdConfig, HeteroSvdConfigBuilder};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use error::HeteroSvdError;
pub use factor_cache::{
    fingerprint_matrix, ClientBytes, ClientId, FactorCache, FactorCacheEntry, FactorCacheStats,
};
pub use obs::{JournalSummary, ObsConfig, ResourceKind, SpanJournal, Stage, UtilizationReport};
pub use orth_pipeline::AdaptiveCounters;
pub use placement::{tenant_capacity, tenant_stripe_width, Placement, SubGrid, SubGridAllocator};
pub use plan_cache::CacheStats;
pub use plan_cache::{PlanCache, PlanHandle};
pub use replay::TimingProfile;
pub use routing::{assign_tenant_lanes, PlioPlan, TenantLanes};
pub use timing::TimingBreakdown;
