//! Timing-replay profiles: simulate a plan's orthogonalization timeline
//! once, then replay it with O(1) table lookups.
//!
//! The paper's clock (Eq. 8–14) is a pure function of the *design* —
//! ordering, `P_eng`, calibration — never of the matrix being
//! factorized (`timing_only_matches_functional_timing` in
//! `accelerator.rs` pins this). Every resource timeline is a max-plus
//! system: a pass's start is `max(ready, available_at)` and its end adds
//! a configuration-derived constant. Such systems reach a *steady state*
//! — once two consecutive iterations shift every piece of timing state
//! (block-ready times plus every timeline's `available_at`) by one
//! uniform `Δ`, all subsequent iterations repeat the same per-pass
//! schedule shifted by further multiples of `Δ`:
//!
//! > if `S_{i} = S_{i-1} + Δ` component-wise, then because every pass
//! > output is built from `max(·)` and `+ const` over components of the
//! > previous state, `out_{i+1} = out_i + Δ` and `S_{i+1} = S_i + Δ`.
//!
//! [`TimingProfile::build`] probes a fresh pipeline (first iteration
//! with the staggered Eq. 12 DDR block-ready times, then more until the
//! uniform shift appears), storing each probed iteration's per-pass
//! record template and the per-iteration [`SimStats`] delta. Replaying
//! iteration `i` is then a table lookup (for `i` within the probed
//! prefix) or a shift of the steady template (beyond it) — no `Timeline`
//! scheduling at all. Functional runs keep doing the rotation math;
//! timing-only runs become near-free.
//!
//! A profile is only sound for the exact initial state it was probed
//! from, so [`crate::OrthPipeline`] activates replay only when its
//! initial block-ready vector equals the profile's
//! ([`TimingProfile::initial_block_ready`]); any other start falls back
//! to live simulation. Plans whose schedule never settles into a uniform
//! shift within the probe budget simply get no profile (`build` returns
//! `None`) — correctness never depends on the probe succeeding.

use crate::config::{FidelityMode, HeteroSvdConfig};
use crate::orth_pipeline::OrthPipeline;
use crate::plan_cache::PlanHandle;
use aie_sim::ddr::DdrModel;
use aie_sim::stats::SimStats;
use aie_sim::time::TimePs;
use svd_kernels::Matrix;

/// Probe budget: iterations simulated before giving up on finding a
/// steady state. Pipelined schedules settle after the DDR stagger drains
/// (typically 2–3 iterations); the margin covers deep multi-band
/// placements.
const MAX_PROBE_ITERATIONS: usize = 12;

/// Timing of one block-pair pass within a profiled iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassTemplate {
    /// The block pair processed.
    pub blocks: (usize, usize),
    /// When the pass's Tx became eligible.
    pub ready: TimePs,
    /// When both blocks were back in the PL FIFOs.
    pub end: TimePs,
}

/// One fully profiled iteration: its completion time and every pass.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IterationTemplate {
    /// Wall-clock completion time of the iteration.
    end: TimePs,
    /// Per-pass records, in schedule order.
    passes: Vec<PassTemplate>,
}

/// A plan's cached orthogonalization timeline: probed once, replayed for
/// every subsequent run of the same design.
#[derive(Debug)]
pub struct TimingProfile {
    /// The Eq. 12 staggered DDR block-ready vector the probe started
    /// from; replay is valid only for runs starting identically.
    initial_block_ready: Vec<TimePs>,
    /// Probed iterations, index = iteration. The last entry is the
    /// steady-state reference that later iterations shift from.
    prefix: Vec<IterationTemplate>,
    /// Uniform per-iteration shift once steady.
    steady_delta: TimePs,
    /// Stats counters one iteration adds (identical every iteration:
    /// the counters depend only on the schedule structure, never on
    /// times).
    iter_stats: SimStats,
}

impl TimingProfile {
    /// Probes the orthogonalization timeline of `plan` under `config`,
    /// returning `None` when no steady state appears within the probe
    /// budget (callers then keep simulating live).
    pub fn build(config: &HeteroSvdConfig, plan: &PlanHandle) -> Option<TimingProfile> {
        // One journal span covers the whole probe (its wall cost is what
        // replay amortizes away); the modeled time is the steady-state
        // per-iteration shift the probe discovered, if any.
        let span_start = config.observability.then(std::time::Instant::now);
        let built = Self::build_inner(config, plan);
        if let Some(t0) = span_start {
            crate::obs::global().record(
                crate::obs::Stage::SimReplay,
                None,
                t0.elapsed(),
                built.as_ref().map(|p| p.steady_delta),
            );
        }
        built
    }

    fn build_inner(config: &HeteroSvdConfig, plan: &PlanHandle) -> Option<TimingProfile> {
        // The probe is timing-only regardless of the caller's fidelity:
        // the clock is data-independent, so one probe serves both.
        let mut probe_cfg = config.clone();
        probe_cfg.fidelity = FidelityMode::TimingOnly;
        probe_cfg.fixed_iterations = Some(1);
        probe_cfg.record_trace = true;
        probe_cfg.functional_parallelism = 1;
        // The probe's internal iterations are an implementation detail;
        // only the single probe span above reaches the journal.
        probe_cfg.observability = false;

        let (initial, _, _) = ddr_initial_ready(&probe_cfg);
        let mut pipe = OrthPipeline::new(&probe_cfg, plan);
        pipe.set_block_ready(initial.clone());
        // Timing-only passes never touch the matrix.
        let mut dummy = Matrix::zeros(0, 0);

        let mut prefix: Vec<IterationTemplate> = Vec::new();
        let mut prev_sig: Option<Vec<TimePs>> = None;
        let mut prev_stats = SimStats::new();
        let mut iter_stats: Option<SimStats> = None;
        let mut trace_cursor = 0usize;

        for _ in 0..MAX_PROBE_ITERATIONS {
            let outcome = pipe.run_iteration(&mut dummy);

            // Per-iteration stats must be constant or replay would drift.
            let stats_delta = pipe.stats().delta_since(&prev_stats);
            prev_stats = *pipe.stats();
            match &iter_stats {
                None => iter_stats = Some(stats_delta),
                Some(first) if *first != stats_delta => return None,
                Some(_) => {}
            }

            let passes: Vec<PassTemplate> = pipe.trace()[trace_cursor..]
                .iter()
                .map(|r| PassTemplate {
                    blocks: r.blocks,
                    ready: r.ready,
                    end: r.end,
                })
                .collect();
            trace_cursor = pipe.trace().len();
            prefix.push(IterationTemplate {
                end: outcome.end,
                passes,
            });

            let sig = pipe.state_signature();
            if let Some(prev) = &prev_sig {
                if let Some(delta) = uniform_shift(prev, &sig) {
                    return Some(TimingProfile {
                        initial_block_ready: initial,
                        prefix,
                        steady_delta: delta,
                        iter_stats: iter_stats.expect("set on first iteration"),
                    });
                }
            }
            prev_sig = Some(sig);
        }
        None
    }

    /// The Eq. 12 block-ready vector this profile is valid for.
    pub fn initial_block_ready(&self) -> &[TimePs] {
        &self.initial_block_ready
    }

    /// The stats counters one replayed iteration adds.
    pub fn iter_stats(&self) -> &SimStats {
        &self.iter_stats
    }

    /// Iterations that were simulated live during the probe (later ones
    /// replay as shifts of the last).
    pub fn probed_iterations(&self) -> usize {
        self.prefix.len()
    }

    /// The template and absolute time shift for `iteration`.
    fn template_for(&self, iteration: usize) -> (&IterationTemplate, TimePs) {
        let last = self.prefix.len() - 1;
        if iteration <= last {
            (&self.prefix[iteration], TimePs::ZERO)
        } else {
            let shift = self.steady_delta.0 * (iteration - last) as u64;
            (&self.prefix[last], TimePs(shift))
        }
    }

    /// Completion time of `iteration` (0-based).
    pub fn iteration_end(&self, iteration: usize) -> TimePs {
        let (template, shift) = self.template_for(iteration);
        TimePs(template.end.0 + shift.0)
    }

    /// Visits every pass of `iteration` in schedule order with its
    /// absolute (shift-applied) timing.
    pub fn for_each_pass(&self, iteration: usize, mut f: impl FnMut(usize, PassTemplate)) {
        let (template, shift) = self.template_for(iteration);
        for (pass, p) in template.passes.iter().enumerate() {
            f(
                pass,
                PassTemplate {
                    blocks: p.blocks,
                    ready: TimePs(p.ready.0 + shift.0),
                    end: TimePs(p.end.0 + shift.0),
                },
            );
        }
    }
}

/// The serialized first-iteration DDR loads of Eq. 12: per-block ready
/// times, the total load time (`t_DDR`), and the bytes loaded. Shared by
/// the accelerator driver and the profile probe so that replay validity
/// reduces to vector equality. With `co_residency > 1` each burst is
/// contention-scaled — the co-resident tenants' loaders split the single
/// DDR controller's bandwidth — and because the probe clones the caller's
/// config, packed profiles start from the same contended stagger the
/// packed live run does, keeping replay exact per co-residency class.
pub(crate) fn ddr_initial_ready(config: &HeteroSvdConfig) -> (Vec<TimePs>, TimePs, usize) {
    let ddr = DdrModel::new(config.calibration);
    let p = config.num_blocks();
    let block_bytes = config.engine_parallelism * config.column_bytes();
    let mut ready = Vec::with_capacity(p);
    let mut t = TimePs::ZERO;
    for _ in 0..p {
        t += ddr.contended_burst_time(block_bytes, config.co_residency);
        ready.push(t);
    }
    (ready, t, p * block_bytes)
}

/// Returns the uniform positive shift between two state signatures, or
/// `None` if the shift is not uniform. Components that are zero in both
/// belong to resources the schedule never touches (e.g. band-break DMA
/// channels of a single-band placement) and are ignored.
fn uniform_shift(prev: &[TimePs], cur: &[TimePs]) -> Option<TimePs> {
    debug_assert_eq!(prev.len(), cur.len());
    let mut delta: Option<TimePs> = None;
    for (&p, &c) in prev.iter().zip(cur) {
        if p == TimePs::ZERO && c == TimePs::ZERO {
            continue;
        }
        if c < p {
            return None;
        }
        let d = TimePs(c.0 - p.0);
        match delta {
            None => delta = Some(d),
            Some(existing) if existing != d => return None,
            Some(_) => {}
        }
    }
    // A zero shift would replay a frozen clock; only a strictly
    // advancing steady state is usable.
    delta.filter(|d| *d > TimePs::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svd_orderings::movement::{DataflowKind, OrderingKind};

    fn config(n: usize, p_eng: usize) -> HeteroSvdConfig {
        HeteroSvdConfig::builder(n, n)
            .engine_parallelism(p_eng)
            .pl_freq_mhz(208.3)
            .build()
            .unwrap()
    }

    #[test]
    fn uniform_shift_detects_steady_state() {
        let prev = vec![TimePs(10), TimePs::ZERO, TimePs(30)];
        let cur = vec![TimePs(15), TimePs::ZERO, TimePs(35)];
        assert_eq!(uniform_shift(&prev, &cur), Some(TimePs(5)));
        // Non-uniform shift.
        let skew = vec![TimePs(15), TimePs::ZERO, TimePs(36)];
        assert_eq!(uniform_shift(&prev, &skew), None);
        // Zero shift is rejected.
        assert_eq!(uniform_shift(&prev, &prev), None);
        // Time going backwards is rejected.
        let back = vec![TimePs(5), TimePs::ZERO, TimePs(25)];
        assert_eq!(uniform_shift(&prev, &back), None);
    }

    #[test]
    fn profile_builds_and_matches_live_simulation() {
        let cfg = config(16, 2);
        let plan = PlanHandle::build(&cfg).unwrap();
        let profile = TimingProfile::build(&cfg, &plan).expect("steady state within probe budget");
        assert!(profile.probed_iterations() >= 2);
        assert!(profile.steady_delta > TimePs::ZERO);

        // A live timing-only pipeline started from the same Eq. 12 state
        // must agree with the profile for probed AND extrapolated
        // iterations.
        let mut live_cfg = cfg.clone();
        live_cfg.fidelity = FidelityMode::TimingOnly;
        live_cfg.fixed_iterations = Some(1);
        let (initial, _, _) = ddr_initial_ready(&live_cfg);
        let mut pipe = OrthPipeline::new(&live_cfg, &plan);
        pipe.set_block_ready(initial);
        let mut dummy = Matrix::zeros(0, 0);
        for iteration in 0..profile.probed_iterations() + 5 {
            let live = pipe.run_iteration(&mut dummy);
            assert_eq!(
                profile.iteration_end(iteration),
                live.end,
                "iteration {iteration}"
            );
        }
    }

    #[test]
    fn profile_pass_templates_match_live_trace() {
        let mut cfg = config(24, 3);
        cfg.record_trace = true;
        let plan = PlanHandle::build(&cfg).unwrap();
        let profile = TimingProfile::build(&cfg, &plan).expect("steady state");

        let mut live_cfg = cfg.clone();
        live_cfg.fidelity = FidelityMode::TimingOnly;
        live_cfg.fixed_iterations = Some(1);
        let (initial, _, _) = ddr_initial_ready(&live_cfg);
        let mut pipe = OrthPipeline::new(&live_cfg, &plan);
        pipe.set_block_ready(initial);
        let mut dummy = Matrix::zeros(0, 0);
        let total = profile.probed_iterations() + 3;
        for _ in 0..total {
            pipe.run_iteration(&mut dummy);
        }
        let live = pipe.trace();
        let passes_per_iter = cfg.num_block_pairs();
        for iteration in 0..total {
            profile.for_each_pass(iteration, |pass, p| {
                let rec = &live[iteration * passes_per_iter + pass];
                assert_eq!(p.blocks, rec.blocks, "iter {iteration} pass {pass}");
                assert_eq!(p.ready, rec.ready, "iter {iteration} pass {pass}");
                assert_eq!(p.end, rec.end, "iter {iteration} pass {pass}");
            });
        }
    }

    #[test]
    fn profiles_build_across_orderings_and_dataflows() {
        for ordering in [
            OrderingKind::ShiftingRing,
            OrderingKind::Ring,
            OrderingKind::RoundRobin,
        ] {
            for dataflow in [DataflowKind::Relocated, DataflowKind::NaiveMemory] {
                let mut cfg = config(16, 2);
                cfg.ordering = ordering;
                cfg.dataflow = dataflow;
                let plan = PlanHandle::build(&cfg).unwrap();
                assert!(
                    TimingProfile::build(&cfg, &plan).is_some(),
                    "no steady state for {ordering:?}/{dataflow:?}"
                );
            }
        }
    }

    #[test]
    fn contended_ddr_stagger_is_slower_but_still_steady() {
        let solo = config(16, 2);
        let mut packed = solo.clone();
        packed.co_residency = 4;
        let (solo_ready, solo_total, bytes) = ddr_initial_ready(&solo);
        let (packed_ready, packed_total, packed_bytes) = ddr_initial_ready(&packed);
        assert_eq!(bytes, packed_bytes, "contention never changes payload");
        assert_eq!(solo_ready.len(), packed_ready.len());
        assert!(packed_total > solo_total);
        for (s, p) in solo_ready.iter().zip(&packed_ready) {
            assert!(p > s, "every contended stagger point is later");
        }
        // The contended start state still settles into a steady state,
        // so packed waves keep O(1) replay.
        let plan = PlanHandle::build(&packed).unwrap();
        let profile = TimingProfile::build(&packed, &plan).expect("steady state under contention");
        assert_eq!(profile.initial_block_ready(), &packed_ready[..]);
    }

    #[test]
    fn iter_stats_capture_one_iteration() {
        let cfg = config(16, 2);
        let plan = PlanHandle::build(&cfg).unwrap();
        let profile = TimingProfile::build(&cfg, &plan).unwrap();
        let s = profile.iter_stats();
        assert_eq!(s.iterations, 1);
        let passes = cfg.num_block_pairs();
        assert_eq!(s.orth_invocations, passes * 2 * (2 * 2 - 1));
        assert_eq!(s.plio_bytes_in, passes * 4 * 16 * 4);
        assert_eq!(s.plio_bytes_out, s.plio_bytes_in);
    }
}
