//! AIE placement engine (§III-C).
//!
//! The shifting ring ordering for a block pair of `2k` columns needs
//! `(2k−1)` orth-layers of `k` orth-AIEs — taller than the 8-row array.
//! The placement:
//!
//! * partitions the layers into **column bands** of width `k`, each using
//!   the `rows−2` interior rows (the first and last rows are reserved for
//!   **mem-layers**, because an orth-layer on a boundary row would have no
//!   subsequent row to hold its output);
//! * inserts a mem-layer of `k` mem-AIEs between consecutive bands to
//!   carry the boundary output across the band break (at the cost of some
//!   unavoidable DMA);
//! * dedicates one **DMA-layer** tile per orth-layer, adjacent to the
//!   band, where the wraparound DMA copy lands (orth-AIEs have no spare
//!   memory for the doubled DMA buffer);
//! * places the `k` **norm-AIEs** in remaining idle tiles.
//!
//! The resulting per-task tile counts reproduce Table VI's AIE usage
//! within a few percent (see `counts_match_table6` below).

use crate::config::HeteroSvdConfig;
use crate::HeteroSvdError;
use aie_sim::geometry::{ArrayGeometry, TileCoord};
use aie_sim::memory::TileMemory;
use aie_sim::pl::PlModel;
use aie_sim::resources::ResourceUsage;
use aie_sim::SimError;
use serde::{Deserialize, Serialize};

/// Geometric packing of `P_task` pipelines onto the array (diagnostic;
/// the Eq. 16 feasibility check is count-based like the paper's).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskPacking {
    /// Pipelines stacked vertically per column band (when a task's
    /// layers fit in half the interior rows or less).
    pub vertical_stack: usize,
    /// Array columns one pipeline occupies (`bands × (k+1)`).
    pub columns_per_task: usize,
    /// Total columns the packing needs.
    pub columns_needed: usize,
    /// Origin tile (bottom-left) of each pipeline.
    pub origins: Vec<TileCoord>,
}

/// Per-task AIE tile counts by role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AieCounts {
    /// Orthogonalization AIEs: `k(2k−1)`.
    pub orth: usize,
    /// Normalization AIEs: `k`.
    pub norm: usize,
    /// Memory AIEs: mem-layers between bands plus DMA-layer tiles.
    pub mem: usize,
}

impl AieCounts {
    /// Total tiles per task.
    pub fn total(&self) -> usize {
        self.orth + self.norm + self.mem
    }
}

/// A concrete placement of one HeteroSVD task on the AIE array.
///
/// # Example
///
/// ```
/// use heterosvd::{HeteroSvdConfig, Placement};
///
/// # fn main() -> Result<(), heterosvd::HeteroSvdError> {
/// let cfg = HeteroSvdConfig::builder(128, 128).engine_parallelism(8).build()?;
/// let placement = Placement::plan(&cfg)?;
/// // P_eng = 8: 15 orth-layers fold into 3 bands of the 6 interior rows.
/// assert_eq!(placement.num_layers(), 15);
/// assert_eq!(placement.num_bands(), 3);
/// assert_eq!(placement.counts().orth, 120);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    k: usize,
    layers: usize,
    usable_rows: usize,
    num_bands: usize,
    geometry: ArrayGeometry,
    orth_tiles: Vec<Vec<TileCoord>>,
    dma_tiles: Vec<TileCoord>,
    mem_layer_tiles: Vec<TileCoord>,
    norm_tiles: Vec<TileCoord>,
    counts: AieCounts,
    usage: ResourceUsage,
}

impl Placement {
    /// Plans the placement for a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HeteroSvdError::Infeasible`] when a column does not fit a
    /// memory bank or a tile's working set exceeds its 32 KB memory.
    pub fn plan(config: &HeteroSvdConfig) -> Result<Self, HeteroSvdError> {
        let k = config.engine_parallelism;
        let geometry = config.device.geometry;
        let layers = 2 * k - 1;
        let usable_rows = geometry.rows.saturating_sub(2).max(1);
        let num_bands = layers.div_ceil(usable_rows);
        let band_width = k + 1; // k orth columns + 1 DMA-layer column

        let mut orth_tiles = Vec::with_capacity(layers);
        let mut dma_tiles = Vec::with_capacity(layers);
        for layer in 0..layers {
            let band = layer / usable_rows;
            let row = 1 + layer % usable_rows;
            let origin = band * band_width;
            let slots = (0..k)
                .map(|s| TileCoord::new(row, origin + s))
                .collect::<Vec<_>>();
            orth_tiles.push(slots);
            dma_tiles.push(TileCoord::new(row, origin + k));
        }

        // Mem-layers: between consecutive bands, on the top boundary row
        // of the earlier band.
        let mut mem_layer_tiles = Vec::new();
        for band in 0..num_bands.saturating_sub(1) {
            let origin = band * band_width;
            for s in 0..k {
                mem_layer_tiles.push(TileCoord::new(geometry.rows - 1, origin + s));
            }
        }

        // Norm-AIEs: idle tiles on the bottom boundary row of band 0.
        let norm_tiles = (0..k).map(|s| TileCoord::new(0, s)).collect::<Vec<_>>();

        let counts = AieCounts {
            orth: k * layers,
            norm: k,
            mem: mem_layer_tiles.len() + dma_tiles.len(),
        };

        Self::validate_memory(config)?;

        let pl = PlModel::new(config.calibration);
        let p_task = config.task_parallelism;
        let usage = ResourceUsage {
            aie: counts.total() * p_task,
            plio: crate::routing::PLIO_PER_TASK * p_task,
            bram: pl.bram_blocks(p_task),
            uram: pl.uram_blocks_per_task(config.rows, config.cols) * p_task,
            luts: pl.luts(config.cols, p_task),
        };

        Ok(Placement {
            k,
            layers,
            usable_rows,
            num_bands,
            geometry,
            orth_tiles,
            dma_tiles,
            mem_layer_tiles,
            norm_tiles,
            counts,
            usage,
        })
    }

    /// Validates that the per-tile working set fits the device's tile
    /// memory: two double-buffered input columns plus (worst case) a
    /// doubled DMA landing buffer of two columns.
    fn validate_memory(config: &HeteroSvdConfig) -> Result<(), HeteroSvdError> {
        let col = config.column_bytes();
        let device = config.device;
        if col > device.bank_bytes {
            return Err(HeteroSvdError::Infeasible(
                aie_sim::SimError::BufferTooLarge {
                    bytes: col,
                    bank_bytes: device.bank_bytes,
                },
            ));
        }
        let mut mem = TileMemory::with_layout(device.banks_per_tile, device.bank_bytes);
        for label in ["in-l", "in-r", "in-l-pong", "in-r-pong", "dma-l", "dma-r"] {
            mem.allocate(label, col)
                .map_err(HeteroSvdError::Infeasible)?;
        }
        Ok(())
    }

    /// Engine parallelism `k`.
    pub fn engine_parallelism(&self) -> usize {
        self.k
    }

    /// Number of orth-layers (`2k−1`).
    pub fn num_layers(&self) -> usize {
        self.layers
    }

    /// Number of column bands the layers were folded into.
    pub fn num_bands(&self) -> usize {
        self.num_bands
    }

    /// Physical array row of an orth-layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= self.num_layers()`.
    pub fn row_of_layer(&self, layer: usize) -> usize {
        assert!(layer < self.layers, "layer {layer} out of range");
        1 + layer % self.usable_rows
    }

    /// Band of an orth-layer.
    pub fn band_of_layer(&self, layer: usize) -> usize {
        assert!(layer < self.layers, "layer {layer} out of range");
        layer / self.usable_rows
    }

    /// `true` when the transition `layer → layer+1` crosses a band break
    /// (routed through a mem-layer: both columns of every slot move by
    /// DMA regardless of the ordering).
    pub fn is_band_break(&self, layer: usize) -> bool {
        layer + 1 < self.layers && self.band_of_layer(layer) != self.band_of_layer(layer + 1)
    }

    /// Tiles of one orth-layer, indexed by slot.
    pub fn orth_tiles(&self, layer: usize) -> &[TileCoord] {
        &self.orth_tiles[layer]
    }

    /// The DMA-layer tile adjacent to an orth-layer.
    pub fn dma_tile(&self, layer: usize) -> TileCoord {
        self.dma_tiles[layer]
    }

    /// Mem-layer tiles (between bands).
    pub fn mem_layer_tiles(&self) -> &[TileCoord] {
        &self.mem_layer_tiles
    }

    /// Norm-AIE tiles.
    pub fn norm_tiles(&self) -> &[TileCoord] {
        &self.norm_tiles
    }

    /// Per-task AIE counts by role.
    pub fn counts(&self) -> AieCounts {
        self.counts
    }

    /// Whole-design resource usage (`P_task` pipelines plus PL).
    pub fn usage(&self) -> ResourceUsage {
        self.usage
    }

    /// The array geometry this placement targets.
    pub fn array_geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// Packs `p_task` pipelines geometrically onto the array: short
    /// pipelines (few layers) stack vertically within a column band;
    /// everything else tiles horizontally. Returns an error when the
    /// packing exceeds the array width.
    ///
    /// This is a *diagnostic*: the paper's Eq. (16) feasibility check is
    /// count-based, and its Table VI includes points (e.g. `P_eng = 8`,
    /// `P_task = 2`) that only fit with placement optimizations beyond
    /// this simple row-major packing — so the DSE does not enforce it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ResourceExceeded`] (resource `"AIE"`) when the
    /// packing needs more columns than the array has.
    pub fn pack_tasks(&self, p_task: usize) -> Result<TaskPacking, SimError> {
        let band_width = self.k + 1;
        let columns_per_task = self.num_bands * band_width;
        let layers_with_boundary = self.layers.min(self.usable_rows) + 1;
        let vertical_stack = (self.geometry.rows / layers_with_boundary.max(1)).max(1);

        let mut origins = Vec::with_capacity(p_task);
        for t in 0..p_task {
            let col = (t / vertical_stack) * columns_per_task;
            let row = (t % vertical_stack) * layers_with_boundary;
            origins.push(TileCoord::new(row, col));
        }
        let columns_needed = p_task.div_ceil(vertical_stack) * columns_per_task;
        if columns_needed > self.geometry.cols {
            return Err(SimError::ResourceExceeded {
                resource: "AIE",
                used: columns_needed,
                budget: self.geometry.cols,
            });
        }
        Ok(TaskPacking {
            vertical_stack,
            columns_per_task,
            columns_needed,
            origins,
        })
    }
}

/// Columns one tenant pipeline occupies as a full-height stripe:
/// `num_bands × (k + 1)` (each band is `k` orth columns plus one
/// DMA-layer column). Independent of the matrix size — the footprint is
/// set by the engine parallelism alone.
pub fn tenant_stripe_width(geometry: ArrayGeometry, engine_parallelism: usize) -> usize {
    let k = engine_parallelism.max(1);
    let layers = 2 * k - 1;
    let usable_rows = geometry.rows.saturating_sub(2).max(1);
    layers.div_ceil(usable_rows) * (k + 1)
}

/// How many disjoint full-height tenant stripes of engine parallelism
/// `k` the array fits side by side. This is the spatial co-residency
/// ceiling the packing scheduler plans against (e.g. 5 at `P_eng = 4`
/// on the 8×50 VCK190, 16 at `P_eng = 2`).
pub fn tenant_capacity(geometry: ArrayGeometry, engine_parallelism: usize) -> usize {
    geometry.cols / tenant_stripe_width(geometry, engine_parallelism)
}

/// A rectangular region of the AIE array held by one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubGrid {
    /// Bottom-left tile of the region.
    pub origin: TileCoord,
    /// Rows the region spans.
    pub rows: usize,
    /// Columns the region spans.
    pub cols: usize,
}

impl SubGrid {
    /// Tiles in the region.
    pub fn area(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether `tile` lies inside the region.
    pub fn contains(&self, tile: TileCoord) -> bool {
        tile.row >= self.origin.row
            && tile.row < self.origin.row + self.rows
            && tile.col >= self.origin.col
            && tile.col < self.origin.col + self.cols
    }

    /// Whether two regions share any tile.
    pub fn overlaps(&self, other: &SubGrid) -> bool {
        self.origin.col < other.origin.col + other.cols
            && other.origin.col < self.origin.col + self.cols
            && self.origin.row < other.origin.row + other.rows
            && other.origin.row < self.origin.row + self.rows
    }
}

/// Rectangular sub-grid allocator: carves the AIE array into disjoint
/// tenant regions so several small-`n` pipelines can run side by side
/// (the multi-problem array-packing tentpole).
///
/// The allocator is **geometry- and parity-aware**:
///
/// * Tenant pipelines are placed as **full-height column stripes**
///   (rows `0..geometry.rows`). A stripe sees the same absolute rows as
///   the whole-array placement — boundary rows 0 and `rows−1` stay
///   reserved for norm-/mem-layers and each orth-layer keeps its row —
///   so every row-parity-dependent invariant (even rows reach their
///   WEST neighbor's memory, odd rows EAST; see
///   [`aie_sim::geometry::TileCoord::is_even_row`]) holds at any column
///   origin. Column origin therefore never enters the timing model or
///   the plan fingerprint.
/// * General rectangular requests are origin-aligned to **even rows**,
///   so a region's relative row parity equals its absolute parity and
///   kernels compiled for one origin behave identically at another.
///
/// Occupancy is a per-column row bitmask: allocations claim exact bits,
/// [`SubGridAllocator::release`] clears exactly those bits, so an
/// allocate → release pair restores the precise free set by
/// construction. Batch placement uses first-fit-decreasing:
/// [`SubGridAllocator::allocate_batch`] sorts requests by area
/// (descending) and first-fit scans origin columns left to right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubGridAllocator {
    geometry: ArrayGeometry,
    /// Occupancy bitmask per array column; bit `r` set = row `r` taken.
    columns: Vec<u64>,
}

impl SubGridAllocator {
    /// An empty allocator over `geometry` (at most 64 rows).
    ///
    /// # Panics
    ///
    /// Panics if the geometry has more than 64 rows (the per-column
    /// occupancy is a `u64` bitmask; every Versal array is 8 rows).
    pub fn new(geometry: ArrayGeometry) -> Self {
        assert!(
            geometry.rows <= 64,
            "sub-grid allocator supports <= 64 rows"
        );
        SubGridAllocator {
            geometry,
            columns: vec![0; geometry.cols],
        }
    }

    /// The array geometry the allocator manages.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// Free tiles remaining.
    pub fn free_tiles(&self) -> usize {
        self.geometry.rows * self.geometry.cols - self.used_tiles()
    }

    /// Tiles currently allocated.
    pub fn used_tiles(&self) -> usize {
        self.columns.iter().map(|m| m.count_ones() as usize).sum()
    }

    fn row_mask(origin_row: usize, rows: usize) -> u64 {
        let mask = if rows >= 64 {
            u64::MAX
        } else {
            (1u64 << rows) - 1
        };
        mask << origin_row
    }

    /// First-fit allocation of a `rows × cols` region: scans origin
    /// columns left to right and (within a column) even origin rows
    /// bottom to top. Returns `None` when no free region fits.
    pub fn allocate(&mut self, rows: usize, cols: usize) -> Option<SubGrid> {
        if rows == 0 || cols == 0 || rows > self.geometry.rows || cols > self.geometry.cols {
            return None;
        }
        for origin_col in 0..=self.geometry.cols - cols {
            let mut origin_row = 0;
            while origin_row + rows <= self.geometry.rows {
                let mask = Self::row_mask(origin_row, rows);
                if self.columns[origin_col..origin_col + cols]
                    .iter()
                    .all(|&m| m & mask == 0)
                {
                    for m in &mut self.columns[origin_col..origin_col + cols] {
                        *m |= mask;
                    }
                    return Some(SubGrid {
                        origin: TileCoord::new(origin_row, origin_col),
                        rows,
                        cols,
                    });
                }
                origin_row += 2; // keep relative row parity == absolute
            }
        }
        None
    }

    /// Allocates a full-height tenant stripe for one pipeline of the
    /// given engine parallelism (see [`tenant_stripe_width`]).
    pub fn allocate_tenant(&mut self, engine_parallelism: usize) -> Option<SubGrid> {
        let width = tenant_stripe_width(self.geometry, engine_parallelism);
        self.allocate(self.geometry.rows, width)
    }

    /// First-fit-decreasing batch placement: requests (as
    /// `(rows, cols)`) are placed largest-area first, and the grids are
    /// returned **in request order**. All-or-nothing — on failure every
    /// grid placed so far is released and `None` is returned.
    pub fn allocate_batch(&mut self, requests: &[(usize, usize)]) -> Option<Vec<SubGrid>> {
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(requests[i].0 * requests[i].1));
        let mut placed: Vec<(usize, SubGrid)> = Vec::with_capacity(requests.len());
        for &i in &order {
            let (rows, cols) = requests[i];
            match self.allocate(rows, cols) {
                Some(grid) => placed.push((i, grid)),
                None => {
                    for (_, grid) in &placed {
                        self.release(grid).expect("rollback releases own grids");
                    }
                    return None;
                }
            }
        }
        placed.sort_by_key(|&(i, _)| i);
        Some(placed.into_iter().map(|(_, g)| g).collect())
    }

    /// Releases a previously allocated region, restoring exactly its
    /// tiles to the free set.
    ///
    /// # Errors
    ///
    /// Returns [`HeteroSvdError::InvalidConfig`] when the region is out
    /// of bounds or any of its tiles is not currently allocated (double
    /// free / foreign region) — the free set is left untouched.
    pub fn release(&mut self, grid: &SubGrid) -> Result<(), HeteroSvdError> {
        if grid.rows == 0
            || grid.cols == 0
            || grid.origin.row + grid.rows > self.geometry.rows
            || grid.origin.col + grid.cols > self.geometry.cols
        {
            return Err(HeteroSvdError::InvalidConfig(format!(
                "sub-grid {}+{}x{} is out of bounds",
                grid.origin, grid.rows, grid.cols
            )));
        }
        let mask = Self::row_mask(grid.origin.row, grid.rows);
        let span = &self.columns[grid.origin.col..grid.origin.col + grid.cols];
        if span.iter().any(|&m| m & mask != mask) {
            return Err(HeteroSvdError::InvalidConfig(format!(
                "sub-grid {}+{}x{} is not fully allocated (double free?)",
                grid.origin, grid.rows, grid.cols
            )));
        }
        for m in &mut self.columns[grid.origin.col..grid.origin.col + grid.cols] {
            *m &= !mask;
        }
        Ok(())
    }

    /// Area of the largest axis-aligned free rectangle.
    pub fn largest_free_rect(&self) -> usize {
        let rows = self.geometry.rows;
        let mut best = 0;
        for r0 in 0..rows {
            for r1 in r0..rows {
                let mask = Self::row_mask(r0, r1 - r0 + 1);
                let height = r1 - r0 + 1;
                let mut run = 0usize;
                for &m in &self.columns {
                    if m & mask == 0 {
                        run += 1;
                        best = best.max(run * height);
                    } else {
                        run = 0;
                    }
                }
            }
        }
        best
    }

    /// External fragmentation: `1 − largest_free_rect / free_tiles`
    /// (0 when the array is full or the free set is one rectangle). A
    /// high value means free tiles exist but no contiguous region can
    /// host a new tenant.
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_tiles();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_rect() as f64 / free as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HeteroSvdConfig;

    fn config(n: usize, p_eng: usize, p_task: usize) -> HeteroSvdConfig {
        HeteroSvdConfig::builder(n, n)
            .engine_parallelism(p_eng)
            .task_parallelism(p_task)
            .build()
            .unwrap()
    }

    #[test]
    fn orth_count_matches_table1_formula() {
        for k in [1usize, 2, 4, 8] {
            let p = Placement::plan(&config(64, k, 1)).unwrap();
            assert_eq!(p.counts().orth, k * (2 * k - 1));
            assert_eq!(p.counts().norm, k);
        }
    }

    #[test]
    fn counts_match_table6() {
        // Table VI AIE usage at 256x256: (P_eng, P_task) -> AIE.
        let rows = [(2usize, 26usize, 293usize), (4, 9, 357), (8, 2, 322)];
        for (p_eng, p_task, paper) in rows {
            let p = Placement::plan(&config(256, p_eng, p_task)).unwrap();
            let total = p.counts().total() * p_task;
            let rel = (total as f64 - paper as f64).abs() / paper as f64;
            assert!(
                rel < 0.10,
                "P_eng={p_eng} P_task={p_task}: model {total} AIEs vs paper {paper} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn layers_fold_into_bands() {
        // k=8 -> 15 layers over 6 usable rows -> 3 bands.
        let p = Placement::plan(&config(256, 8, 1)).unwrap();
        assert_eq!(p.num_layers(), 15);
        assert_eq!(p.num_bands(), 3);
        assert_eq!(p.row_of_layer(0), 1);
        assert_eq!(p.row_of_layer(5), 6);
        assert_eq!(p.row_of_layer(6), 1); // next band restarts
        assert_eq!(p.band_of_layer(6), 1);
        assert!(p.is_band_break(5));
        assert!(!p.is_band_break(4));
        // Mem-layers between 3 bands: 2 * k tiles.
        assert_eq!(p.mem_layer_tiles().len(), 2 * 8);
    }

    #[test]
    fn orth_tiles_avoid_boundary_rows() {
        let p = Placement::plan(&config(128, 4, 1)).unwrap();
        for layer in 0..p.num_layers() {
            for t in p.orth_tiles(layer) {
                assert!(t.row >= 1 && t.row <= 6, "orth tile on boundary row {t}");
            }
        }
    }

    #[test]
    fn dma_tiles_sit_beside_their_band() {
        let p = Placement::plan(&config(128, 4, 1)).unwrap();
        for layer in 0..p.num_layers() {
            let dma = p.dma_tile(layer);
            let last_slot = p.orth_tiles(layer)[3];
            assert_eq!(dma.row, last_slot.row);
            assert_eq!(dma.col, last_slot.col + 1);
        }
    }

    #[test]
    fn usage_scales_with_task_parallelism() {
        let one = Placement::plan(&config(256, 4, 1)).unwrap().usage();
        let nine = Placement::plan(&config(256, 4, 9)).unwrap().usage();
        assert_eq!(nine.aie, 9 * one.aie);
        assert_eq!(nine.plio, 9 * one.plio);
        assert_eq!(nine.uram, 9 * one.uram);
    }

    #[test]
    fn oversized_columns_are_infeasible() {
        // 4096-row columns exceed the 8 KB bank.
        let c = HeteroSvdConfig::builder(4096, 64)
            .engine_parallelism(4)
            .build()
            .unwrap();
        assert!(matches!(
            Placement::plan(&c),
            Err(HeteroSvdError::Infeasible(_))
        ));
    }

    #[test]
    fn max_supported_column_length_is_1365() {
        // 6 column buffers (2 in, 2 ping-pong, 2 DMA) must fit 32 KB:
        // m*4*6 <= 32768 -> m <= 1365. The paper's largest size is 1024.
        let ok = HeteroSvdConfig::builder(1024, 64)
            .engine_parallelism(4)
            .build()
            .unwrap();
        assert!(Placement::plan(&ok).is_ok());
        let too_big = HeteroSvdConfig::builder(2048, 64)
            .engine_parallelism(4)
            .build()
            .unwrap();
        assert!(Placement::plan(&too_big).is_err());
    }

    #[test]
    fn packing_stacks_short_pipelines_vertically() {
        // P_eng = 2: 3 layers + boundary = 4 rows -> 2 pipelines per band.
        let p = Placement::plan(&config(64, 2, 1)).unwrap();
        let packing = p.pack_tasks(26).unwrap();
        assert_eq!(packing.vertical_stack, 2);
        assert_eq!(packing.columns_per_task, 3);
        assert_eq!(packing.columns_needed, 13 * 3);
        assert_eq!(packing.origins.len(), 26);
        // Origins are distinct.
        let set: std::collections::HashSet<_> = packing.origins.iter().collect();
        assert_eq!(set.len(), 26);
    }

    #[test]
    fn packing_rejects_overwide_designs() {
        // P_eng = 8: 3 bands of 9 columns each = 27 columns per task; two
        // tasks need 54 > 50 columns under row-major packing (the paper's
        // placement evidently packs tighter; see method docs).
        let p = Placement::plan(&config(64, 8, 1)).unwrap();
        assert!(p.pack_tasks(1).is_ok());
        assert!(matches!(
            p.pack_tasks(2),
            Err(SimError::ResourceExceeded { .. })
        ));
    }

    #[test]
    fn tile_roles_never_overlap() {
        // Orth, DMA-layer, mem-layer and norm tiles must be pairwise
        // disjoint for every engine parallelism.
        for p_eng in 1..=11 {
            let p = Placement::plan(&config(2 * p_eng * 2, p_eng, 1)).unwrap();
            let mut seen = std::collections::HashSet::new();
            for layer in 0..p.num_layers() {
                for &t in p.orth_tiles(layer) {
                    assert!(seen.insert(t), "P_eng={p_eng}: duplicate tile {t}");
                }
            }
            // One DMA tile per layer, but stacked layers in the same band
            // share the same physical DMA column rows across bands only;
            // within a band each row is distinct.
            let mut dma_seen = std::collections::HashSet::new();
            for layer in 0..p.num_layers() {
                let t = p.dma_tile(layer);
                assert!(
                    !seen.contains(&t),
                    "P_eng={p_eng}: DMA tile {t} overlaps orth"
                );
                dma_seen.insert(t);
            }
            for &t in p.mem_layer_tiles() {
                assert!(!seen.contains(&t) && !dma_seen.contains(&t));
            }
            for &t in p.norm_tiles() {
                assert!(!seen.contains(&t) && !dma_seen.contains(&t));
                assert!(!p.mem_layer_tiles().contains(&t));
            }
        }
    }

    #[test]
    fn k1_degenerate_placement() {
        let p = Placement::plan(&config(64, 1, 1)).unwrap();
        assert_eq!(p.num_layers(), 1);
        assert_eq!(p.num_bands(), 1);
        assert_eq!(p.counts().orth, 1);
        assert_eq!(p.counts().mem, 1); // one DMA-layer tile
    }

    #[test]
    fn tenant_capacity_matches_stripe_math() {
        let g = aie_sim::geometry::ArrayGeometry::VCK190;
        // P_eng=4: 7 layers / 6 usable rows = 2 bands of width 5 -> 10
        // columns per stripe -> 5 stripes in 50 columns.
        assert_eq!(tenant_stripe_width(g, 4), 10);
        assert_eq!(tenant_capacity(g, 4), 5);
        // P_eng=2: 3 layers -> 1 band of width 3 -> 16 stripes.
        assert_eq!(tenant_stripe_width(g, 2), 3);
        assert_eq!(tenant_capacity(g, 2), 16);
        // P_eng=8: 15 layers -> 3 bands of width 9 -> 1 stripe only.
        assert_eq!(tenant_capacity(g, 8), 1);
    }

    #[test]
    fn tenant_stripes_never_overlap_and_fill_capacity() {
        let g = aie_sim::geometry::ArrayGeometry::VCK190;
        let mut alloc = SubGridAllocator::new(g);
        let mut grids = Vec::new();
        while let Some(grid) = alloc.allocate_tenant(4) {
            grids.push(grid);
        }
        assert_eq!(grids.len(), tenant_capacity(g, 4));
        for (i, a) in grids.iter().enumerate() {
            // Full-height stripes starting at the boundary row, so the
            // absolute rows (and their parity) match the whole-array
            // placement at any column origin.
            assert_eq!(a.origin.row, 0);
            assert_eq!(a.rows, g.rows);
            for b in &grids[i + 1..] {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
    }

    #[test]
    fn allocate_release_restores_exact_free_set() {
        let g = aie_sim::geometry::ArrayGeometry::VCK190;
        let mut alloc = SubGridAllocator::new(g);
        let pristine = alloc.clone();
        let a = alloc.allocate(4, 7).unwrap();
        let b = alloc.allocate(8, 10).unwrap();
        let c = alloc.allocate(2, 3).unwrap();
        assert_eq!(alloc.used_tiles(), a.area() + b.area() + c.area());
        alloc.release(&b).unwrap();
        alloc.release(&a).unwrap();
        alloc.release(&c).unwrap();
        assert_eq!(alloc, pristine);
        // Double free and foreign regions are rejected without damage.
        assert!(alloc.release(&a).is_err());
        assert_eq!(alloc, pristine);
    }

    #[test]
    fn general_allocations_are_parity_aligned() {
        let g = aie_sim::geometry::ArrayGeometry::VCK190;
        let mut alloc = SubGridAllocator::new(g);
        for _ in 0..12 {
            if let Some(grid) = alloc.allocate(3, 5) {
                assert_eq!(grid.origin.row % 2, 0, "origin row must stay even");
                assert!(grid.origin.row + grid.rows <= g.rows);
                assert!(grid.origin.col + grid.cols <= g.cols);
            }
        }
    }

    #[test]
    fn batch_is_first_fit_decreasing_and_atomic() {
        let g = aie_sim::geometry::ArrayGeometry::VCK190;
        let mut alloc = SubGridAllocator::new(g);
        // Results come back in request order, sizes preserved.
        let grids = alloc.allocate_batch(&[(2, 3), (8, 10), (4, 5)]).unwrap();
        assert_eq!(grids[0].rows * grids[0].cols, 6);
        assert_eq!(grids[1].rows * grids[1].cols, 80);
        assert_eq!(grids[2].rows * grids[2].cols, 20);
        // The largest request was placed first (leftmost full column).
        assert_eq!(grids[1].origin.col, 0);
        let used = alloc.used_tiles();
        // An unsatisfiable batch rolls back completely.
        assert!(alloc.allocate_batch(&[(8, 10), (8, 50)]).is_none());
        assert_eq!(alloc.used_tiles(), used);
    }

    #[test]
    fn fragmentation_accounts_for_checkerboard_release() {
        let g = aie_sim::geometry::ArrayGeometry::VCK190;
        let mut alloc = SubGridAllocator::new(g);
        assert_eq!(alloc.fragmentation(), 0.0); // one free rectangle
        let s0 = alloc.allocate_tenant(4).unwrap();
        let s1 = alloc.allocate_tenant(4).unwrap();
        let s2 = alloc.allocate_tenant(4).unwrap();
        assert_eq!((s0.cols, s1.cols, s2.cols), (10, 10, 10));
        // Releasing the middle stripe splits the free set: 8x10 hole +
        // 8x20 tail -> largest rect 160 of 240 free tiles.
        alloc.release(&s1).unwrap();
        assert_eq!(alloc.largest_free_rect(), 160);
        assert!((alloc.fragmentation() - 1.0 / 3.0).abs() < 1e-12);
        let _ = s0;
        let _ = s2;
    }
}
