//! Hard numerical cases for the Jacobi kernels: ill-conditioned,
//! graded, and nearly-dependent inputs. One-sided Jacobi is famous for
//! computing all singular values to high *relative* accuracy on graded
//! matrices — a property QR-based methods lack — so the reference
//! solver must exhibit it.

use heterosvd_repro::heterosvd::{Accelerator, HeteroSvdConfig};
use heterosvd_repro::svd_kernels::{hestenes_jacobi, verify, JacobiOptions, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random orthogonal matrix via Gram–Schmidt on a random Gaussian.
fn random_orthogonal(n: usize, seed: u64) -> Matrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        for u in &cols {
            let dot: f64 = v.iter().zip(u).map(|(a, b)| a * b).sum();
            for (vi, ui) in v.iter_mut().zip(u) {
                *vi -= dot * ui;
            }
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        for x in v.iter_mut() {
            *x /= norm;
        }
        cols.push(v);
    }
    Matrix::from_fn(n, n, |r, c| cols[c][r])
}

#[test]
fn hilbert_matrix_reconstructs_despite_conditioning() {
    // The 8x8 Hilbert matrix has condition number ~1.5e10.
    let n = 8;
    let h = Matrix::from_fn(n, n, |r, c| 1.0 / (r + c + 1) as f64);
    let svd = hestenes_jacobi(&h, &JacobiOptions::default()).unwrap();
    assert!(svd.reconstruction_error(&h) < 1e-12);
    let svs = svd.sorted_singular_values();
    // Known extremes: sigma_max ~ 1.696, sigma_min ~ 1.1e-10.
    assert!((svs[0] - 1.6959).abs() < 1e-3);
    assert!(svs[n - 1] > 0.0 && svs[n - 1] < 1e-9);
}

#[test]
fn graded_matrix_singular_values_have_high_relative_accuracy() {
    // A = U * diag(10^0 .. 10^-12) * V^T: every singular value must come
    // back with small *relative* error — the one-sided Jacobi guarantee.
    let n = 7;
    let u = random_orthogonal(n, 1);
    let v = random_orthogonal(n, 2);
    let sigmas: Vec<f64> = (0..n).map(|i| 10.0_f64.powi(-2 * i as i32)).collect();
    let mut d = Matrix::zeros(n, n);
    for i in 0..n {
        d[(i, i)] = sigmas[i];
    }
    let a = u.matmul(&d).unwrap().matmul(&v.transpose()).unwrap();

    let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
    let got = svd.sorted_singular_values();
    for (expect, actual) in sigmas.iter().zip(&got) {
        let rel = (expect - actual).abs() / expect;
        // Even sigma = 1e-12 comes back to ~2e-5 relative error (the
        // Eq. 6 stopping threshold of 1e-12 bounds the residual): the
        // high-relative-accuracy property. A QR-based solver would lose
        // these values entirely to absolute-error floors (~1e-16).
        assert!(
            rel < 1e-4,
            "sigma {expect:e}: relative error {rel:e} (got {actual:e})"
        );
    }
}

#[test]
fn nearly_dependent_columns_converge() {
    // Columns that differ by 1e-9 perturbations: one large and one tiny
    // singular value per pair, still resolved.
    let n = 6;
    let mut rng = StdRng::seed_from_u64(3);
    let base: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let a = Matrix::from_fn(n, 4, |r, c| base[r] + 1e-9 * (r * 7 + c * 3) as f64);
    let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
    assert!(svd.reconstruction_error(&a) < 1e-10);
    let svs = svd.sorted_singular_values();
    assert!(svs[0] > 1.0e-1);
    assert!(svs[1] < 1e-7, "near-dependence should collapse sigma_2");
}

#[test]
fn accelerator_handles_graded_spectrum_within_f32_limits() {
    // In f32 the accelerator can only resolve ~7 decades; the large
    // singular values must still be relatively accurate.
    let n = 16;
    let u = random_orthogonal(n, 4);
    let v = random_orthogonal(n, 5);
    let mut d = Matrix::zeros(n, n);
    for i in 0..n {
        d[(i, i)] = 10.0_f64.powi(-(i as i32) / 4);
    }
    let a = u.matmul(&d).unwrap().matmul(&v.transpose()).unwrap();

    let cfg = HeteroSvdConfig::builder(n, n)
        .engine_parallelism(2)
        .precision(1e-6)
        .build()
        .unwrap();
    let out = Accelerator::new(cfg).unwrap().run(&a).unwrap();
    let golden = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
    let err = verify::singular_value_error(
        &golden.sorted_singular_values(),
        &out.result.sorted_singular_values(),
    );
    assert!(err < 1e-4, "graded spectrum error {err}");
    // The top singular values individually match to f32 accuracy.
    let gs = golden.sorted_singular_values();
    let hs = out.result.sorted_singular_values();
    for i in 0..4 {
        let rel = (gs[i] - hs[i] as f64).abs() / gs[i];
        assert!(rel < 1e-4, "sigma_{i} relative error {rel}");
    }
}

#[test]
fn identical_columns_yield_exact_rank_one() {
    let a = Matrix::from_fn(12, 6, |r, _| (r as f64 + 1.0).sqrt());
    let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
    assert_eq!(svd.rank(1e-12), 1);
    assert!(svd.reconstruction_error(&a) < 1e-12);
}
