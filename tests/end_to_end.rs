//! End-to-end integration: the simulated accelerator against the f64
//! golden solver across sizes, shapes and configurations.

use heterosvd_repro::heterosvd::{Accelerator, HeteroSvdConfig};
use heterosvd_repro::orderings::movement::{DataflowKind, OrderingKind};
use heterosvd_repro::svd_kernels::{hestenes_jacobi, verify, JacobiOptions, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |r, c| {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if r == c {
            v + 2.0
        } else {
            v
        }
    })
}

fn check_against_golden(a: &Matrix<f64>, p_eng: usize) {
    let cfg = HeteroSvdConfig::builder(a.rows(), a.cols())
        .engine_parallelism(p_eng)
        .precision(1e-6)
        .build()
        .unwrap();
    let out = Accelerator::new(cfg).unwrap().run(a).unwrap();
    let golden = hestenes_jacobi(a, &JacobiOptions::default()).unwrap();
    let err = verify::singular_value_error(
        &golden.sorted_singular_values(),
        &out.result.sorted_singular_values(),
    );
    assert!(
        err < 5e-4,
        "{}x{} P_eng={p_eng}: singular value error {err}",
        a.rows(),
        a.cols()
    );
    assert!(
        verify::column_orthogonality_error(&out.result.u) < 1e-3,
        "U not orthogonal"
    );
}

#[test]
fn accelerator_matches_golden_square_sizes() {
    for (n, p_eng) in [(16, 2), (32, 4), (64, 8), (48, 4)] {
        check_against_golden(&random_matrix(n, n, n as u64), p_eng);
    }
}

#[test]
fn accelerator_matches_golden_odd_engine_parallelisms() {
    // Odd k exercises the shifting-ring slot rotation hardest (the shift
    // wraps mid-array); every Table I value of P_eng must be functional.
    for (n, p_eng) in [(30, 3), (40, 5), (28, 7), (36, 9), (44, 11)] {
        check_against_golden(&random_matrix(n, n, 1000 + n as u64), p_eng);
    }
}

#[test]
fn accelerator_matches_golden_rectangular() {
    check_against_golden(&random_matrix(96, 32, 9), 4);
    check_against_golden(&random_matrix(64, 16, 10), 2);
}

#[test]
fn accelerator_handles_rank_deficient_input() {
    // Rank-3 matrix: the noise-floor gate must let convergence finish.
    let base = random_matrix(48, 3, 11);
    let mix = random_matrix(3, 48, 12);
    let a = base.matmul(&mix).unwrap();
    let cfg = HeteroSvdConfig::builder(48, 48)
        .engine_parallelism(4)
        .precision(1e-6)
        .build()
        .unwrap();
    let out = Accelerator::new(cfg).unwrap().run(&a).unwrap();
    let svs = out.result.sorted_singular_values();
    assert!(svs[2] > 1e-3, "three real singular values expected");
    // The rest are numerically zero.
    let scale = svs[0];
    for s in &svs[3..] {
        assert!(*s / scale < 1e-3, "spurious singular value {s}");
    }
}

#[test]
fn all_orderings_produce_identical_math() {
    // The ordering/dataflow only changes timing, never results.
    let a = random_matrix(32, 32, 13);
    let mut results = Vec::new();
    for ordering in [
        OrderingKind::Ring,
        OrderingKind::RoundRobin,
        OrderingKind::ShiftingRing,
    ] {
        for dataflow in [DataflowKind::NaiveMemory, DataflowKind::Relocated] {
            let cfg = HeteroSvdConfig::builder(32, 32)
                .engine_parallelism(4)
                .ordering(ordering)
                .dataflow(dataflow)
                .fixed_iterations(6)
                .build()
                .unwrap();
            let out = Accelerator::new(cfg).unwrap().run(&a).unwrap();
            results.push(out.result.sigma.clone());
        }
    }
    for pair in results.windows(2) {
        assert_eq!(pair[0], pair[1], "ordering changed the numerics");
    }
}

#[test]
fn codesign_is_fastest_variant() {
    let a = random_matrix(36, 36, 14);
    let mut timings = Vec::new();
    for (name, ordering, dataflow) in [
        ("ring+naive", OrderingKind::Ring, DataflowKind::NaiveMemory),
        (
            "codesign",
            OrderingKind::ShiftingRing,
            DataflowKind::Relocated,
        ),
    ] {
        let cfg = HeteroSvdConfig::builder(36, 36)
            .engine_parallelism(3)
            .ordering(ordering)
            .dataflow(dataflow)
            .pl_freq_mhz(208.3)
            .fixed_iterations(6)
            .build()
            .unwrap();
        let out = Accelerator::new(cfg).unwrap().run(&a).unwrap();
        timings.push((name, out.timing.task_time, out.stats.dma_transfers));
    }
    assert!(
        timings[1].1 < timings[0].1,
        "co-design {} !< naive {}",
        timings[1].1,
        timings[0].1
    );
    assert!(timings[1].2 < timings[0].2, "co-design must reduce DMA");
}

#[test]
fn convergence_iterations_decrease_with_looser_precision() {
    let a = random_matrix(32, 32, 15);
    let run_with = |precision: f64| {
        let cfg = HeteroSvdConfig::builder(32, 32)
            .engine_parallelism(4)
            .precision(precision)
            .build()
            .unwrap();
        Accelerator::new(cfg)
            .unwrap()
            .run(&a)
            .unwrap()
            .result
            .sweeps
    };
    // f32 kernels bottom out near 1e-7 on the Eq. 6 measure, so the
    // tight precision stays above that floor.
    let tight = run_with(1e-6);
    let loose = run_with(1e-2);
    assert!(loose < tight, "loose {loose} !< tight {tight}");
}

#[test]
fn aie_ml_profile_admits_taller_columns_than_vck190() {
    use heterosvd_repro::aie_sim::device::DeviceProfile;
    use heterosvd_repro::heterosvd::FidelityMode;
    // 2048-row columns need 8 KB buffers x6: beyond a 32 KB AIE1 tile,
    // within a 64 KB AIE-ML tile.
    let build = |device: DeviceProfile| {
        HeteroSvdConfig::builder(2048, 32)
            .engine_parallelism(4)
            .device(device)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(1)
            .build()
            .and_then(Accelerator::new)
    };
    assert!(build(DeviceProfile::VCK190).is_err());
    let acc = build(DeviceProfile::VE2802_ESTIMATE).expect("fits AIE-ML tiles");
    let out = acc.run(&Matrix::zeros(2048, 32)).unwrap();
    assert!(out.timing.task_time.0 > 0);
}

#[test]
fn functional_run_on_aie_ml_profile_matches_golden() {
    use heterosvd_repro::aie_sim::device::DeviceProfile;
    let a = random_matrix(32, 32, 321);
    let cfg = HeteroSvdConfig::builder(32, 32)
        .engine_parallelism(4)
        .device(DeviceProfile::VE2802_ESTIMATE)
        .precision(1e-6)
        .build()
        .unwrap();
    let out = Accelerator::new(cfg).unwrap().run(&a).unwrap();
    let golden = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
    let err = verify::singular_value_error(
        &golden.sorted_singular_values(),
        &out.result.sorted_singular_values(),
    );
    assert!(err < 1e-4, "AIE-ML functional error {err}");
}

#[test]
fn batch_results_equal_single_results() {
    let a = random_matrix(16, 16, 16);
    let cfg = HeteroSvdConfig::builder(16, 16)
        .engine_parallelism(2)
        .task_parallelism(4)
        .fixed_iterations(6)
        .build()
        .unwrap();
    let acc = Accelerator::new(cfg).unwrap();
    let single = acc.run(&a).unwrap();
    let (batch_out, sys) = acc.run_batch(&a, 10).unwrap();
    assert_eq!(single.result.sigma, batch_out.result.sigma);
    // ceil(10/4) = 3 waves.
    assert_eq!(sys.0, batch_out.timing.task_time.0 * 3);
}
