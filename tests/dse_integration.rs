//! DSE integration: every design the explorer returns must actually
//! build, fit the device, and perform as predicted.

use heterosvd_repro::dse::{run_dse, DseConfig, Objective};
use heterosvd_repro::heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use heterosvd_repro::svd_kernels::Matrix;

#[test]
fn every_feasible_point_constructs_an_accelerator() {
    let result = run_dse(&DseConfig::new(128, 128).iterations(6));
    assert!(!result.evaluations.is_empty());
    for e in &result.evaluations {
        let cfg = HeteroSvdConfig::builder(128, 128)
            .engine_parallelism(e.point.engine_parallelism)
            .task_parallelism(e.point.task_parallelism)
            .pl_freq_mhz(e.point.pl_freq_mhz)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(6)
            .build()
            .expect("feasible point must build");
        let acc = Accelerator::new(cfg).expect("feasible point must place");
        assert_eq!(acc.placement().usage(), e.usage);
    }
}

#[test]
fn best_latency_point_is_actually_fastest_in_simulation() {
    let result = run_dse(&DseConfig::new(64, 64).iterations(6).freq_mhz(310.0));
    let best = result.best(Objective::MinLatency).unwrap();
    let a = Matrix::zeros(64, 64);

    let simulate = |p_eng: usize, p_task: usize| {
        let cfg = HeteroSvdConfig::builder(64, 64)
            .engine_parallelism(p_eng)
            .task_parallelism(p_task)
            .pl_freq_mhz(310.0)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(6)
            .build()
            .unwrap();
        Accelerator::new(cfg)
            .unwrap()
            .run(&a)
            .unwrap()
            .timing
            .task_time
    };

    let best_sim = simulate(best.point.engine_parallelism, best.point.task_parallelism);
    // Check against a sample of other feasible points.
    for e in result.evaluations.iter().step_by(7) {
        let other = simulate(e.point.engine_parallelism, e.point.task_parallelism);
        assert!(
            best_sim.0 <= (other.0 as f64 * 1.05) as u64,
            "DSE best ({:?}) simulated at {} but point {:?} runs at {}",
            best.point,
            best_sim,
            e.point,
            other
        );
    }
}

#[test]
fn dse_predictions_match_simulation_within_15_percent() {
    let result = run_dse(&DseConfig::new(64, 64).iterations(6).freq_mhz(310.0));
    let a = Matrix::zeros(64, 64);
    for e in result.evaluations.iter().step_by(11) {
        let cfg = HeteroSvdConfig::builder(64, 64)
            .engine_parallelism(e.point.engine_parallelism)
            .task_parallelism(e.point.task_parallelism)
            .pl_freq_mhz(310.0)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(6)
            .build()
            .unwrap();
        let sim = Accelerator::new(cfg)
            .unwrap()
            .run(&a)
            .unwrap()
            .timing
            .task_time;
        let err = (e.latency.0 as f64 - sim.0 as f64).abs() / sim.0 as f64;
        // 64x64 is below the paper's smallest size; fill-path effects
        // loom larger there, so the budget is wider than Table IV's.
        assert!(
            err < 0.15,
            "point {:?}: model {} vs sim {} (err {err:.3})",
            e.point,
            e.latency,
            sim
        );
    }
}

#[test]
fn infeasible_designs_are_rejected_consistently() {
    // The DSE and the accelerator must agree on feasibility.
    let cfg = DseConfig::new(256, 256);
    for p_eng in [2usize, 4, 8] {
        for p_task in [1usize, 10, 26] {
            let dse_feasible = heterosvd_repro::dse::evaluate_point(&cfg, p_eng, p_task).is_some();
            let hw = HeteroSvdConfig::builder(256, 256)
                .engine_parallelism(p_eng)
                .task_parallelism(p_task)
                .build()
                .and_then(Accelerator::new);
            assert_eq!(
                dse_feasible,
                hw.is_ok(),
                "feasibility disagreement at P_eng={p_eng} P_task={p_task}"
            );
        }
    }
}
