//! End-to-end test of the serving runtime against the golden solver:
//! many threads submit concurrently, every request completes exactly
//! once, and each response's singular values match `hestenes_jacobi` on
//! the request's own matrix.

use heterosvd_repro::serve::{ServeConfig, SvdService};
use heterosvd_repro::svd_kernels::{hestenes_jacobi, verify, JacobiOptions, Matrix};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn request_matrix(i: usize) -> Matrix<f64> {
    // Mixed valid shapes for P_eng = 2; diagonally dominant so the
    // factorization is well conditioned.
    let (rows, cols) = [(8, 8), (12, 8), (16, 12), (12, 12)][i % 4];
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * 23 + c * 7 + i * 31) % 19) as f64 / 4.0 + if r == c { 6.0 } else { 0.0 }
    })
}

#[test]
fn concurrent_submissions_complete_exactly_once_with_correct_values() {
    const N: usize = 24;
    const SUBMITTERS: usize = 6;

    let service = Arc::new(
        SvdService::start(ServeConfig {
            workers: 3,
            queue_capacity: 64,
            max_batch: 4,
            max_linger: Duration::from_millis(2),
            ..ServeConfig::default()
        })
        .unwrap(),
    );
    let completions = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for t in 0..SUBMITTERS {
            let service = Arc::clone(&service);
            let completions = Arc::clone(&completions);
            scope.spawn(move || {
                for i in (t..N).step_by(SUBMITTERS) {
                    let a = request_matrix(i);
                    let golden = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
                    // The queue is sized for the burst, but retry on
                    // backpressure to keep the test honest about the API.
                    let handle = loop {
                        match service.try_submit(a.clone()) {
                            Ok(h) => break h,
                            Err(heterosvd_repro::serve::ServeError::QueueFull { .. }) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(other) => panic!("admission failed: {other}"),
                        }
                    };
                    let response = handle.wait().expect("request must complete");
                    // `wait` consumes the handle, so this is the one and
                    // only delivery; count it for the exactly-once check.
                    completions.fetch_add(1, Ordering::SeqCst);
                    let err = verify::singular_value_error(
                        &golden.sorted_singular_values(),
                        &response.output.result.sorted_singular_values(),
                    );
                    assert!(
                        err < 1e-3,
                        "request {i}: singular value error {err} vs golden"
                    );
                    assert!(
                        response.latency.sim_exec_ps > 0,
                        "request {i} was not charged simulated time"
                    );
                }
            });
        }
    });

    assert_eq!(completions.load(Ordering::SeqCst), N as u64);
    service.shutdown();
    let m = service.metrics();
    assert_eq!(m.completed_ok, N as u64, "ledger: {m:?}");
    assert_eq!(m.failed, 0);
    assert_eq!(m.cancelled, 0);
    assert_eq!(m.timed_out, 0);
    assert_eq!(m.replicas_live, 0);
    assert!(m.throughput_rps > 0.0);
}
