//! The performance model (Eq. 8–14) must track the cycle-approximate
//! simulator — the invariant behind Tables IV and V.

use heterosvd_repro::heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use heterosvd_repro::perf_model::{estimate, DesignPoint};
use heterosvd_repro::svd_kernels::Matrix;

fn simulate_iteration_ms(n: usize, p_eng: usize, freq: f64) -> f64 {
    let cfg = HeteroSvdConfig::builder(n, n)
        .engine_parallelism(p_eng)
        .pl_freq_mhz(freq)
        .fidelity(FidelityMode::TimingOnly)
        .fixed_iterations(1)
        .build()
        .unwrap();
    let acc = Accelerator::new(cfg).unwrap();
    acc.run(&Matrix::zeros(n, n))
        .unwrap()
        .timing
        .avg_iteration()
        .as_millis()
}

fn model_iteration_ms(n: usize, p_eng: usize, freq: f64) -> f64 {
    estimate(&DesignPoint {
        rows: n,
        cols: n,
        engine_parallelism: p_eng,
        task_parallelism: 1,
        pl_freq_mhz: freq,
        iterations: 1,
    })
    .iteration
    .as_millis()
}

#[test]
fn model_tracks_simulator_on_paper_grid() {
    // Table IV's grid shrunk to test-friendly sizes; the paper's
    // model-vs-board error budget is 3.03% max / 1.78% avg, ours must
    // stay below 10% everywhere.
    let mut worst = 0.0_f64;
    for n in [64usize, 128, 256] {
        for p_eng in [2usize, 4, 8] {
            let sim = simulate_iteration_ms(n, p_eng, 208.3);
            let model = model_iteration_ms(n, p_eng, 208.3);
            let err = (model - sim).abs() / sim;
            worst = worst.max(err);
            // The paper's grid starts at 128; 64x64 iterations are
            // fill-dominated (28 passes) and get a wider budget.
            let budget = if n >= 128 { 0.10 } else { 0.20 };
            assert!(
                err < budget,
                "n={n} P_eng={p_eng}: model {model:.3} vs sim {sim:.3} ms (err {err:.3})"
            );
        }
    }
    assert!(worst < 0.20);
}

#[test]
fn model_tracks_simulator_across_frequencies() {
    for freq in [200.0, 310.0, 450.0] {
        let sim = simulate_iteration_ms(128, 4, freq);
        let model = model_iteration_ms(128, 4, freq);
        let err = (model - sim).abs() / sim;
        assert!(err < 0.10, "freq {freq}: err {err:.3}");
    }
}

#[test]
fn model_and_simulator_agree_on_ranking() {
    // Whatever the absolute errors, the model must rank design points
    // like the simulator does — that is what the DSE relies on.
    let mut sims = Vec::new();
    let mut models = Vec::new();
    for p_eng in [2usize, 4, 8] {
        sims.push(simulate_iteration_ms(128, p_eng, 208.3));
        models.push(model_iteration_ms(128, p_eng, 208.3));
    }
    for i in 0..sims.len() - 1 {
        assert_eq!(
            sims[i] > sims[i + 1],
            models[i] > models[i + 1],
            "ranking disagreement at index {i}: sims {sims:?} models {models:?}"
        );
    }
}

#[test]
fn task_level_model_tracks_simulator() {
    let n = 128;
    let cfg = HeteroSvdConfig::builder(n, n)
        .engine_parallelism(4)
        .pl_freq_mhz(310.0)
        .fidelity(FidelityMode::TimingOnly)
        .fixed_iterations(6)
        .build()
        .unwrap();
    let acc = Accelerator::new(cfg).unwrap();
    let sim_task = acc
        .run(&Matrix::zeros(n, n))
        .unwrap()
        .timing
        .task_time
        .as_millis();
    let model_task = estimate(&DesignPoint {
        rows: n,
        cols: n,
        engine_parallelism: 4,
        task_parallelism: 1,
        pl_freq_mhz: 310.0,
        iterations: 6,
    })
    .task
    .as_millis();
    let err = (model_task - sim_task).abs() / sim_task;
    assert!(
        err < 0.10,
        "t_task: model {model_task:.3} vs sim {sim_task:.3} ms"
    );
}
