//! Property-based tests (proptest) on the core invariants of the stack.

use heterosvd_repro::heterosvd::{Accelerator, HeteroSvdConfig};
use heterosvd_repro::orderings::movement::{
    analyze, classify, AccessKind, DataflowKind, Movement, OrderingKind,
};
use heterosvd_repro::orderings::HardwareSchedule;
use heterosvd_repro::perf_model::{estimate, DesignPoint};
use heterosvd_repro::svd_kernels::rotation::{
    column_products, compute_rotation, orthogonalize_pair,
};
use heterosvd_repro::svd_kernels::{hestenes_jacobi, verify, JacobiOptions, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A Jacobi rotation always orthogonalizes its pair and preserves the
    /// combined norm (it is an orthogonal transform).
    #[test]
    fn rotation_orthogonalizes_and_preserves_norm(
        x in prop::collection::vec(-100.0_f64..100.0, 2..32),
        y_seed in prop::collection::vec(-100.0_f64..100.0, 2..32),
    ) {
        let len = x.len().min(y_seed.len());
        let mut xs = x[..len].to_vec();
        let mut ys = y_seed[..len].to_vec();
        let norm_before: f64 = xs.iter().chain(ys.iter()).map(|v| v * v).sum();
        orthogonalize_pair(&mut xs, &mut ys);
        let dot: f64 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
        let norm_after: f64 = xs.iter().chain(ys.iter()).map(|v| v * v).sum();
        prop_assert!(dot.abs() <= 1e-8 * norm_after.max(1.0));
        prop_assert!((norm_before - norm_after).abs() <= 1e-9 * norm_before.max(1.0));
    }

    /// c² + s² = 1 for every non-identity rotation.
    #[test]
    fn rotation_is_unitary(
        alpha in 1e-6_f64..1e6,
        beta in 1e-6_f64..1e6,
        gamma in -1e6_f64..1e6,
    ) {
        let rot = compute_rotation(alpha, beta, gamma);
        prop_assert!((rot.c * rot.c + rot.s * rot.s - 1.0).abs() < 1e-12);
    }

    /// The reference SVD reconstructs arbitrary well-scaled matrices and
    /// its singular values are non-negative.
    #[test]
    fn reference_svd_reconstructs(seed in 0_u64..500, n in 2_usize..10, extra in 0_usize..6) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows = n + extra;
        let a = Matrix::from_fn(rows, n, |_, _| rng.gen_range(-10.0..10.0));
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        prop_assert!(svd.reconstruction_error(&a) < 1e-8);
        prop_assert!(svd.sigma.iter().all(|&s| s >= 0.0));
        prop_assert!(verify::column_orthogonality_error(svd.v.as_ref().unwrap()) < 1e-8);
    }

    /// Hardware schedules are complete tournaments for every k and
    /// ordering.
    #[test]
    fn schedules_are_complete(k in 0_usize..16) {
        for ordering in [OrderingKind::Ring, OrderingKind::ShiftingRing] {
            let s = HardwareSchedule::new(k, ordering);
            prop_assert!(s.is_complete());
            if k > 0 {
                prop_assert_eq!(s.num_layers(), 2 * k - 1);
            }
        }
    }

    /// Movement analysis conservation: DMA + neighbor = total, and the
    /// co-design never uses more DMA than any other corner.
    #[test]
    fn movement_analysis_is_conservative(k in 1_usize..16) {
        let mut counts = Vec::new();
        for ordering in [OrderingKind::Ring, OrderingKind::ShiftingRing] {
            for dataflow in [DataflowKind::NaiveMemory, DataflowKind::Relocated] {
                let r = analyze(ordering, dataflow, k);
                prop_assert_eq!(r.dma_transfers + r.neighbor_accesses, r.total_movements);
                prop_assert_eq!(r.total_movements, 2 * k * (2 * k).saturating_sub(2));
                counts.push((ordering, dataflow, r.dma_transfers));
            }
        }
        let codesign = counts
            .iter()
            .find(|(o, d, _)| *o == OrderingKind::ShiftingRing && *d == DataflowKind::Relocated)
            .unwrap()
            .2;
        for (_, _, dma) in &counts {
            prop_assert!(codesign <= *dma);
        }
    }

    /// Classification is total and consistent: straight is always a
    /// neighbor access, wraparound always DMA, laterals depend only on
    /// the row parity and dataflow.
    #[test]
    fn classification_is_parity_periodic(row in 0_usize..64) {
        for df in [DataflowKind::NaiveMemory, DataflowKind::Relocated] {
            prop_assert_eq!(classify(Movement::Straight, row, df), AccessKind::Neighbor);
            prop_assert_eq!(classify(Movement::Wraparound, row, df), AccessKind::Dma);
            for m in [Movement::Leftward, Movement::Rightward] {
                prop_assert_eq!(classify(m, row, df), classify(m, row + 2, df));
            }
        }
    }

    /// The performance model is monotone: more work never takes less
    /// time.
    #[test]
    fn perf_model_monotone_in_size(p_eng in 1_usize..9_usize) {
        let p_eng = if p_eng > 4 { 8 } else { p_eng.next_power_of_two() };
        let t = |n: usize| {
            estimate(&DesignPoint {
                rows: n,
                cols: n,
                engine_parallelism: p_eng,
                task_parallelism: 1,
                pl_freq_mhz: 310.0,
                iterations: 1,
            })
            .iteration
        };
        prop_assert!(t(64) < t(128));
        prop_assert!(t(128) < t(256));
    }
}

proptest! {
    // The accelerator runs are comparatively slow; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full accelerator agrees with the golden solver on random
    /// inputs of random shapes.
    #[test]
    fn accelerator_matches_golden_random(seed in 0_u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p_eng = [2usize, 4][rng.gen_range(0..2usize)];
        let blocks = rng.gen_range(2..5usize) * 2;
        let n = p_eng * blocks;
        let rows = n + rng.gen_range(0..16usize);
        let a = Matrix::from_fn(rows, n, |_, _| rng.gen_range(-5.0..5.0));

        let cfg = HeteroSvdConfig::builder(rows, n)
            .engine_parallelism(p_eng)
            .precision(1e-6)
            .build()
            .unwrap();
        let out = Accelerator::new(cfg).unwrap().run(&a).unwrap();
        let golden = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let err = verify::singular_value_error(
            &golden.sorted_singular_values(),
            &out.result.sorted_singular_values(),
        );
        prop_assert!(err < 1e-3, "seed {seed}: singular value error {err}");
    }

    /// Simulated time is invariant to the matrix *values* (timing-only
    /// schedules depend only on the shape and config).
    #[test]
    fn timing_depends_only_on_shape(seed in 0_u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(24, 24, |_, _| rng.gen_range(-1.0..1.0));
        let cfg = HeteroSvdConfig::builder(24, 24)
            .engine_parallelism(2)
            .fixed_iterations(4)
            .build()
            .unwrap();
        let acc = Accelerator::new(cfg).unwrap();
        let t1 = acc.run(&a).unwrap().timing.task_time;
        let t2 = acc.run(&Matrix::zeros(24, 24)).unwrap().timing.task_time;
        prop_assert_eq!(t1, t2);
    }

    /// The convergence-adaptive engine (threshold-Jacobi gating plus
    /// dirty-pair memoization) reaches the same singular values as the
    /// exact engine within 10× the precision target and converges in the
    /// same number of sweeps ±1, across random, ill-conditioned
    /// (condition ≈ 1e6), and rank-deficient inputs.
    #[test]
    fn adaptive_sweeps_match_exact(seed in 0_u64..1000, n in 4_usize..16) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows = n + 4;
        for family in 0_usize..3 {
        let a = match family {
            0 => Matrix::from_fn(rows, n, |_, _| rng.gen_range(-10.0..10.0)),
            1 => {
                // Geometrically decaying column scales: condition ~1e6.
                let base = Matrix::from_fn(rows, n, |_, _| rng.gen_range(-1.0..1.0));
                Matrix::from_fn(rows, n, |r, c| {
                    base[(r, c)] * 10f64.powf(-6.0 * c as f64 / (n - 1) as f64)
                })
            }
            _ => {
                // Rank ⌈n/2⌉ < n via a thin-factor product.
                let rank = (n / 2).max(1);
                let b = Matrix::from_fn(rows, rank, |_, _| rng.gen_range(-3.0..3.0));
                let c = Matrix::from_fn(rank, n, |_, _| rng.gen_range(-3.0..3.0));
                Matrix::from_fn(rows, n, |i, j| {
                    (0..rank).map(|k| b[(i, k)] * c[(k, j)]).sum()
                })
            }
        };
        let precision = 1e-8;
        let opts = |adaptive| JacobiOptions {
            precision,
            compute_v: false,
            adaptive,
            ..JacobiOptions::default()
        };
        let exact = hestenes_jacobi(&a, &opts(false)).unwrap();
        let adaptive = hestenes_jacobi(&a, &opts(true)).unwrap();
        let err = verify::singular_value_error(
            &exact.sorted_singular_values(),
            &adaptive.sorted_singular_values(),
        );
        prop_assert!(
            err <= 10.0 * precision,
            "family {family} seed {seed} n {n}: adaptive vs exact σ error {err:.3e}"
        );
        let delta = exact.sweeps as i64 - adaptive.sweeps as i64;
        prop_assert!(
            delta.abs() <= 1,
            "family {family} seed {seed} n {n}: sweeps exact {} vs adaptive {}",
            exact.sweeps,
            adaptive.sweeps
        );
        }
    }

    /// Per-pass column products are consistent: α, β ≥ 0 and |γ| ≤ √(αβ)
    /// (Cauchy–Schwarz), so the Eq. 6 measure is in [0, 1].
    #[test]
    fn convergence_measure_is_bounded(
        x in prop::collection::vec(-50.0_f64..50.0, 4..16),
        y in prop::collection::vec(-50.0_f64..50.0, 4..16),
    ) {
        let len = x.len().min(y.len());
        let (alpha, beta, gamma) = column_products(&x[..len], &y[..len]);
        prop_assert!(alpha >= 0.0 && beta >= 0.0);
        let bound = (alpha * beta).sqrt() * (1.0 + 1e-12);
        prop_assert!(gamma.abs() <= bound + 1e-12);
        let rot = compute_rotation(alpha, beta, gamma);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&rot.convergence));
    }
}
