//! Cross-implementation check: Algorithm 1 executed *structurally*
//! through the PL modules of Fig. 2 — data arrangement → sender
//! (packetization + switch routing) → orth kernels → receiver →
//! system module — must produce exactly the same matrix trajectory as
//! the pipelined accelerator.

use heterosvd_repro::heterosvd::pl_modules::{
    DataArrangement, Phase, Receiver, Sender, SystemModule,
};
use heterosvd_repro::heterosvd::{Accelerator, HeteroSvdConfig, Placement};
use heterosvd_repro::orderings::movement::OrderingKind;
use heterosvd_repro::orderings::HardwareSchedule;
use heterosvd_repro::svd_kernels::rotation::orthogonalize_pair_gated;
use heterosvd_repro::svd_kernels::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sample(n: usize, seed: u64) -> Matrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |r, c| {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if r == c {
            v + 2.0
        } else {
            v
        }
    })
}

/// Runs Algorithm 1 through the explicit module datapath: every column
/// travels as a real routed packet; the system module drives the stage
/// transitions.
fn run_through_modules(a: &Matrix<f64>, k: usize, iterations: usize) -> (Matrix<f32>, f64) {
    let cfg = HeteroSvdConfig::builder(a.rows(), a.cols())
        .engine_parallelism(k)
        .fixed_iterations(iterations)
        .build()
        .unwrap();
    let placement = Placement::plan(&cfg).unwrap();
    let schedule = HardwareSchedule::new(k, OrderingKind::ShiftingRing);
    let sender = Sender::new(&placement, &schedule).unwrap();
    let mut receiver = Receiver::new();
    let mut system = SystemModule::new(cfg.precision, cfg.max_iterations, Some(iterations));

    let a32 = a.cast::<f32>();
    let floor = a32.column_norm_floor_sq();
    let mut da = DataArrangement::new(a32, k).unwrap();

    while system.phase() == Phase::Orthogonalizing {
        receiver.reset_convergence();
        da.rewind();
        while let Some((u, v)) = da.next_block_pair() {
            let cols = da.fetch_pair(u, v);

            // Sender: packetize and verify each packet routes to a
            // layer-0 orth tile before "transmitting".
            let packets = sender.packetize(&schedule, &cols);
            let mut working: Vec<Vec<f32>> = cols;
            for p in &packets {
                let dest = sender.route(&p.packet).expect("route installed");
                assert_eq!(dest.row, placement.row_of_layer(0));
            }

            // Orth-AIE computation, layer by layer (the same math the
            // pipelined accelerator performs slot by slot).
            let mut pass_conv = 0.0_f64;
            for layer in schedule.layers() {
                for &(i, j) in &layer.pairs_by_slot {
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    let (head, tail) = working.split_at_mut(hi);
                    let conv = orthogonalize_pair_gated(&mut head[lo], &mut tail[0], floor) as f64;
                    pass_conv = pass_conv.max(conv);
                }
            }

            // Receiver: decode the returning packets (the sender's
            // layer-0 framing is reused for the return trip) and store
            // the updated blocks.
            let return_packets = sender.packetize(&schedule, &working);
            let first = &schedule.layers()[0].pairs_by_slot;
            let mut updated = vec![Vec::new(); working.len()];
            for p in &return_packets {
                let (col, data) = receiver.accept(&p.packet, first, pass_conv).unwrap();
                updated[col] = data;
            }
            da.store_pair(u, v, updated);
        }
        system.iteration_done(receiver.convergence());
    }
    assert_eq!(system.phase(), Phase::Normalizing);
    (da.into_matrix(), receiver.convergence())
}

#[test]
fn module_datapath_matches_pipelined_accelerator() {
    let a = sample(16, 77);
    let iterations = 4;
    let (module_b, _) = run_through_modules(&a, 2, iterations);

    let cfg = HeteroSvdConfig::builder(16, 16)
        .engine_parallelism(2)
        .fixed_iterations(iterations)
        .build()
        .unwrap();
    let out = Accelerator::new(cfg).unwrap().run(&a).unwrap();

    // The accelerator normalizes at the end; undo by comparing against
    // sigma * u columns.
    for c in 0..16 {
        let sigma = out.result.sigma[c];
        for r in 0..16 {
            let pipeline_val = out.result.u[(r, c)] * sigma;
            let module_val = module_b[(r, c)];
            assert!(
                (pipeline_val - module_val).abs() <= 1e-4 * sigma.max(1.0),
                "mismatch at ({r},{c}): pipeline {pipeline_val} vs modules {module_val}"
            );
        }
    }
}

#[test]
fn module_datapath_converges() {
    let a = sample(16, 78);
    let (_, conv_after) = run_through_modules(&a, 2, 8);
    // After eight iterations the final sweep's measure is small.
    assert!(conv_after < 1e-4, "convergence {conv_after}");
}

#[test]
fn fifo_accounting_balances_across_iterations() {
    let a = sample(16, 79);
    let cfg_k = 2;
    let a32 = a.cast::<f32>();
    let mut da = DataArrangement::new(a32, cfg_k).unwrap();
    for _ in 0..3 {
        da.rewind();
        while let Some((u, v)) = da.next_block_pair() {
            let cols = da.fetch_pair(u, v);
            da.store_pair(u, v, cols);
        }
    }
    let stats = da.stats();
    assert_eq!(stats.fetches, stats.stores);
    // All in-flight copies released: residency back to the matrix itself.
    assert_eq!(stats.resident_bytes, 16 * 16 * 4);
}
