//! Soak tests at the paper's smallest full size (128²). These exercise
//! the complete functional accelerator at realistic scale and take tens
//! of seconds in debug builds, so they are `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release --test soak -- --ignored
//! ```

use heterosvd_repro::heterosvd::{Accelerator, HeteroSvdConfig};
use heterosvd_repro::svd_kernels::{hestenes_jacobi, verify, JacobiOptions, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(n: usize, seed: u64) -> Matrix<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(n, n, |r, c| {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if r == c {
            v + 2.0
        } else {
            v
        }
    })
}

#[test]
#[ignore = "full-size functional run; use --release --ignored"]
fn full_128_functional_matches_golden() {
    let a = random_matrix(128, 2024);
    let cfg = HeteroSvdConfig::builder(128, 128)
        .engine_parallelism(8)
        .precision(1e-6)
        .build()
        .unwrap();
    let out = Accelerator::new(cfg).unwrap().run(&a).unwrap();
    let golden = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
    let err = verify::singular_value_error(
        &golden.sorted_singular_values(),
        &out.result.sorted_singular_values(),
    );
    assert!(err < 1e-4, "singular value error {err}");
    assert!(verify::column_orthogonality_error(&out.result.u) < 1e-3);
    // Paper-scale sanity on the simulated clock (Table II ballpark).
    let ms = out.timing.task_time.as_millis();
    assert!((0.2..10.0).contains(&ms), "latency {ms} ms out of range");
}

#[test]
#[ignore = "full-size batch run; use --release --ignored"]
fn batch_of_32_distinct_matrices_all_converge() {
    let cfg = HeteroSvdConfig::builder(64, 64)
        .engine_parallelism(4)
        .task_parallelism(8)
        .precision(1e-6)
        .build()
        .unwrap();
    let acc = Accelerator::new(cfg).unwrap();
    let mats: Vec<Matrix<f64>> = (0..32).map(|i| random_matrix(64, 5000 + i)).collect();
    let (outs, sys) = acc.run_many(&mats).unwrap();
    assert_eq!(outs.len(), 32);
    for (i, out) in outs.iter().enumerate() {
        let golden = hestenes_jacobi(&mats[i], &JacobiOptions::default()).unwrap();
        let err = verify::singular_value_error(
            &golden.sorted_singular_values(),
            &out.result.sorted_singular_values(),
        );
        assert!(err < 1e-4, "matrix {i}: error {err}");
    }
    // 32 tasks on 8 pipelines: 4 waves.
    assert_eq!(
        sys.0,
        outs.iter().map(|o| o.timing.task_time.0).max().unwrap() * 4
    );
}
