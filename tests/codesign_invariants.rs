//! Invariants of the algorithm-hardware co-design: the simulator's DMA
//! accounting must agree with the closed-form movement analysis, and the
//! paper's headline formulas must hold through the whole stack.

use heterosvd_repro::heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use heterosvd_repro::orderings::movement::{
    analyze, codesign_dma_count, ring_naive_dma_count, DataflowKind, OrderingKind,
};
use heterosvd_repro::orderings::HardwareSchedule;
use heterosvd_repro::svd_kernels::Matrix;

fn dma_per_pass(n: usize, p_eng: usize, ordering: OrderingKind, dataflow: DataflowKind) -> usize {
    let cfg = HeteroSvdConfig::builder(n, n)
        .engine_parallelism(p_eng)
        .ordering(ordering)
        .dataflow(dataflow)
        .fidelity(FidelityMode::TimingOnly)
        .fixed_iterations(1)
        .build()
        .unwrap();
    let acc = Accelerator::new(cfg).unwrap();
    let out = acc.run(&Matrix::zeros(n, n)).unwrap();
    let passes = acc.config().num_block_pairs();
    assert_eq!(out.stats.dma_transfers % passes, 0);
    out.stats.dma_transfers / passes
}

#[test]
fn simulator_dma_matches_closed_forms_single_band() {
    // k = 2 and k = 3 keep all layers in one placement band, so the
    // simulator must reproduce the paper's formulas exactly.
    for (n, k) in [(16usize, 2usize), (24, 3)] {
        assert_eq!(
            dma_per_pass(n, k, OrderingKind::Ring, DataflowKind::NaiveMemory),
            ring_naive_dma_count(k),
            "ring+naive k={k}"
        );
        assert_eq!(
            dma_per_pass(n, k, OrderingKind::ShiftingRing, DataflowKind::Relocated),
            codesign_dma_count(k),
            "codesign k={k}"
        );
    }
}

#[test]
fn simulator_dma_matches_analysis_with_physical_rows() {
    // For multi-band placements the analysis must be fed the physical
    // layer->row map; band-break transitions are all-DMA double hops.
    let k = 4;
    let cfg = HeteroSvdConfig::builder(16, 16)
        .engine_parallelism(k)
        .fidelity(FidelityMode::TimingOnly)
        .fixed_iterations(1)
        .build()
        .unwrap();
    let acc = Accelerator::new(cfg.clone()).unwrap();
    let out = acc.run(&Matrix::zeros(16, 16)).unwrap();
    let passes = cfg.num_block_pairs();

    // Expected: non-break transitions follow the analysis; the one break
    // transition (layer 5 -> 6) costs 2 DMA per column = 4k.
    let placement = acc.placement();
    let mut expected = 0usize;
    for t in 0..placement.num_layers() - 1 {
        if placement.is_band_break(t) {
            expected += 2 * 2 * k;
        } else {
            let report = heterosvd_repro::orderings::movement::analyze_with_rows(
                cfg.ordering,
                cfg.dataflow,
                k,
                |l| placement.row_of_layer(l),
            );
            expected += report.dma_per_transition[t];
        }
    }
    assert_eq!(out.stats.dma_transfers, passes * expected);
}

#[test]
fn headline_formulas_hold_for_all_k() {
    for k in 1..=11 {
        let naive = analyze(OrderingKind::Ring, DataflowKind::NaiveMemory, k);
        let codesign = analyze(OrderingKind::ShiftingRing, DataflowKind::Relocated, k);
        assert_eq!(naive.dma_transfers, ring_naive_dma_count(k));
        assert_eq!(codesign.dma_transfers, codesign_dma_count(k));
        // The schedule behind the analysis is a complete tournament.
        assert!(HardwareSchedule::new(k, OrderingKind::ShiftingRing).is_complete());
    }
}

#[test]
fn dma_reduction_translates_to_memory_savings() {
    // Each avoided DMA avoids a doubled buffer: the co-design's extra
    // buffer count is k times smaller.
    let k = 3;
    let naive = analyze(OrderingKind::Ring, DataflowKind::NaiveMemory, k);
    let codesign = analyze(OrderingKind::ShiftingRing, DataflowKind::Relocated, k);
    assert_eq!(naive.extra_dma_buffers, k * codesign.extra_dma_buffers);
}
