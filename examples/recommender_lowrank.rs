//! Recommender-system low-rank approximation: the second application the
//! paper's introduction motivates (\[4\], \[5\]).
//!
//! A synthetic user×item rating matrix with a planted low-rank structure
//! plus noise is factorized on the accelerator; truncating to the top-k
//! singular triplets denoises the ratings. The example reports the
//! reconstruction error against the planted ground truth as the retained
//! rank grows — the error floor appears exactly at the planted rank.
//!
//! ```text
//! cargo run --release --example recommender_lowrank
//! ```

use heterosvd_repro::heterosvd::{Accelerator, HeteroSvdConfig};
use heterosvd_repro::svd_kernels::{hestenes_jacobi, JacobiOptions, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (users, items, true_rank) = (96, 48, 6);
    let mut rng = StdRng::seed_from_u64(7);

    // Planted low-rank preference structure: taste vectors x item traits.
    let tastes = Matrix::from_fn(users, true_rank, |_, _| rng.gen_range(-1.0..1.0));
    let traits_m = Matrix::from_fn(true_rank, items, |_, _| rng.gen_range(-1.0..1.0));
    let clean = tastes.matmul(&traits_m)?;
    let noisy = Matrix::from_fn(users, items, |r, c| {
        clean[(r, c)] + rng.gen_range(-0.05..0.05)
    });

    let config = HeteroSvdConfig::builder(users, items)
        .engine_parallelism(4)
        .precision(1e-6)
        .build()?;
    let out = Accelerator::new(config)?.run(&noisy)?;
    println!("== Recommender low-rank denoising ({users} users x {items} items) ==");
    println!(
        "accelerator: {} iterations, {:.3} ms simulated latency",
        out.result.sweeps,
        out.timing.task_time.as_millis()
    );

    // The accelerator returns U and sigma (Algorithm 1); the library
    // recovers V and builds the Eckart-Young rank-k approximations.
    let noisy32 = noisy.cast::<f32>();
    let order = out.result.descending_order();

    let clean_norm = clean.frobenius_norm();
    println!("\n{:>6} {:>14} {:>12}", "rank", "error vs truth", "sigma_k");
    let mut floor_error = f64::INFINITY;
    for k in [1, 2, 4, 6, 8, 12] {
        let approx = out.result.low_rank_approximation(&noisy32, k)?;
        let approx64: Matrix<f64> = approx.cast();
        let err = approx64.sub(&clean)?.frobenius_norm() / clean_norm;
        let sigma_k = out.result.sigma[order[k.min(items) - 1]];
        println!("{k:>6} {err:>14.5} {sigma_k:>12.4}");
        if k == true_rank {
            floor_error = err;
        }
    }

    // Sanity: the golden model agrees on the spectrum.
    let golden = hestenes_jacobi(&noisy, &JacobiOptions::default())?;
    let gs = golden.sorted_singular_values();
    let hs = out.result.sorted_singular_values();
    let spectral_err = (gs[0] - hs[0] as f64).abs() / gs[0];
    println!("\nspectral agreement with f64 golden: {spectral_err:.2e}");
    println!(
        "planted rank {true_rank}: truncated reconstruction error {floor_error:.4} \
         (noise floor; full-rank noise would be ~0.05)"
    );

    assert!(
        floor_error < 0.05,
        "rank-{true_rank} truncation must denoise"
    );
    assert!(spectral_err < 1e-4);
    Ok(())
}
