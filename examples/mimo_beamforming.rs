//! MIMO beamforming: the wireless workload that motivates real-time SVD
//! in the paper's introduction (\[1\]–\[3\]).
//!
//! A massive-MIMO base station estimates a channel matrix `H` per
//! coherence interval and needs its dominant singular vectors for
//! beamforming weights — a latency-critical, small-matrix, batched SVD.
//! This example processes a batch of Rayleigh-fading channel matrices on
//! the accelerator (throughput-optimal configuration from the DSE) and
//! reports the beamforming gain achieved by the dominant left singular
//! vector against the theoretical optimum.
//!
//! ```text
//! cargo run --release --example mimo_beamforming
//! ```

use heterosvd_repro::dse::{run_dse, DseConfig, Objective};
use heterosvd_repro::heterosvd::{Accelerator, HeteroSvdConfig};
use heterosvd_repro::svd_kernels::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rayleigh-fading channel: i.i.d. Gaussian entries (Box–Muller).
fn channel_matrix(rx: usize, tx: usize, rng: &mut StdRng) -> Matrix<f64> {
    Matrix::from_fn(rx, tx, |_, _| {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (rx, tx) = (64, 32); // 64 receive antennas, 32 transmit streams
    let batch = 16;
    let mut rng = StdRng::seed_from_u64(2026);

    // Pick the throughput-optimal micro-architecture for this shape.
    let dse = run_dse(&DseConfig::new(rx, tx).batch(batch).iterations(8));
    let best = dse
        .best(Objective::MaxThroughput)
        .expect("feasible design for the MIMO shape");
    println!(
        "DSE picked P_eng={} P_task={} @ {:.0} MHz ({} feasible points)",
        best.point.engine_parallelism,
        best.point.task_parallelism,
        best.point.pl_freq_mhz,
        dse.evaluations.len()
    );

    let config = HeteroSvdConfig::builder(rx, tx)
        .engine_parallelism(best.point.engine_parallelism)
        .task_parallelism(best.point.task_parallelism)
        .pl_freq_mhz(best.point.pl_freq_mhz)
        .precision(1e-6)
        .build()?;
    let accelerator = Accelerator::new(config)?;

    // Factorize the whole batch in parallel (one thread per channel).
    let channels: Vec<_> = (0..batch)
        .map(|_| channel_matrix(rx, tx, &mut rng))
        .collect();
    let (outputs, system_time) = accelerator.run_many(&channels)?;

    let mut total_gain = 0.0;
    let mut worst_ratio: f64 = 1.0;
    for (i, (h, out)) in channels.iter().zip(&outputs).enumerate() {
        // Beamforming gain of the dominant left singular vector u1:
        // ||Hᵀu1|| should equal sigma_max.
        let svs = out.result.sorted_singular_values();
        let sigma_max = svs[0] as f64;
        let best_col = (0..tx)
            .max_by(|&a, &b| out.result.sigma[a].total_cmp(&out.result.sigma[b]))
            .expect("nonzero width");
        let u1: Vec<f64> = out
            .result
            .u
            .col(best_col)
            .iter()
            .map(|&v| v as f64)
            .collect();
        // (H^T u)_j = <H[:,j], u>
        let mut htu = vec![0.0_f64; tx];
        for (j, slot) in htu.iter_mut().enumerate() {
            *slot = h.col(j).iter().zip(&u1).map(|(a, b)| a * b).sum::<f64>();
        }
        let gain = htu.iter().map(|v| v * v).sum::<f64>().sqrt();
        total_gain += gain;
        worst_ratio = worst_ratio.min(gain / sigma_max);
        if i < 3 {
            println!(
                "channel {i}: sigma_max = {sigma_max:.4}, beamforming gain = {gain:.4} \
                 (ratio {:.6}), {} iterations",
                gain / sigma_max,
                out.result.sweeps
            );
        }
    }

    let sys_time_ms = system_time.as_millis();
    println!("\nprocessed {batch} channel matrices ({rx}x{tx})");
    println!("mean beamforming gain  : {:.4}", total_gain / batch as f64);
    println!("worst gain / sigma_max : {worst_ratio:.6} (1.0 = optimal)");
    println!(
        "simulated batch latency: {sys_time_ms:.3} ms ({:.1} channels/s)",
        batch as f64 / (sys_time_ms / 1e3)
    );

    assert!(
        worst_ratio > 0.999,
        "beamforming vector must achieve the optimal gain"
    );
    Ok(())
}
