//! Calibration probe: simulated single-iteration latency vs the paper's
//! on-board measurements (Table IV, PL fixed at 208.3 MHz).
//!
//! ```text
//! cargo run --release --example calibration_probe
//! ```

use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use svd_kernels::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (size, P_eng, paper on-board ms)
    let rows = [
        (128usize, 2usize, 0.993),
        (256, 2, 6.151),
        (512, 2, 43.229),
        (128, 4, 0.395),
        (256, 4, 2.853),
        (512, 4, 21.584),
        (128, 8, 0.214),
        (256, 8, 1.475),
        (512, 8, 10.965),
    ];
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>8}",
        "size", "P_eng", "paper(ms)", "sim(ms)", "ratio"
    );
    for (n, p_eng, paper) in rows {
        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(p_eng)
            .pl_freq_mhz(208.3)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(1)
            .build()?;
        let acc = Accelerator::new(cfg)?;
        let a = Matrix::zeros(n, n);
        let out = acc.run(&a)?;
        // Table IV reports the orth iteration time (model scope is one
        // iteration), so compare avg_iteration.
        let sim = out.timing.avg_iteration().as_millis();
        println!(
            "{:>6} {:>6} {:>12.3} {:>12.3} {:>8.2}",
            n,
            p_eng,
            paper,
            sim,
            sim / paper
        );
    }
    Ok(())
}
