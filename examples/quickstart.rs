//! Quickstart: factorize one matrix on the simulated HeteroSVD
//! accelerator and verify the result against the golden solver.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use heterosvd_repro::heterosvd::{Accelerator, HeteroSvdConfig};
use heterosvd_repro::svd_kernels::{hestenes_jacobi, verify, JacobiOptions, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::from_fn(n, n, |r, c| {
        let v: f64 = rng.gen_range(-1.0..1.0);
        if r == c {
            v + 2.0
        } else {
            v
        }
    });

    // Configure the accelerator: P_eng = 8 (the paper's latency-oriented
    // design), shifting-ring ordering and relocated dataflow by default.
    let config = HeteroSvdConfig::builder(n, n)
        .engine_parallelism(8)
        .precision(1e-6)
        .build()?;
    let accelerator = Accelerator::new(config)?;

    let out = accelerator.run(&a)?;
    println!("== HeteroSVD quickstart ({n}x{n}) ==");
    println!("iterations to converge : {}", out.result.sweeps);
    println!(
        "simulated latency      : {:.3} ms (t_iter avg {:.3} ms, t_norm {:.3} ms)",
        out.timing.task_time.as_millis(),
        out.timing.avg_iteration().as_millis(),
        out.timing.norm_time.as_millis()
    );
    println!(
        "hardware activity      : {} orth kernels, {} DMA transfers, {} neighbor accesses",
        out.stats.orth_invocations, out.stats.dma_transfers, out.stats.neighbor_accesses
    );
    println!(
        "resources              : {} AIEs, {} URAM, {} PLIOs",
        out.usage.aie, out.usage.uram, out.usage.plio
    );

    // Verify against the f64 golden model.
    let golden = hestenes_jacobi(&a, &JacobiOptions::default())?;
    let sv_err = verify::singular_value_error(
        &golden.sorted_singular_values(),
        &out.result.sorted_singular_values(),
    );
    let ortho = verify::column_orthogonality_error(&out.result.u);
    println!("singular value error   : {sv_err:.2e} (vs f64 golden)");
    println!("U orthogonality error  : {ortho:.2e}");
    let top: Vec<String> = out
        .result
        .sorted_singular_values()
        .iter()
        .take(5)
        .map(|s| format!("{s:.4}"))
        .collect();
    println!("largest singular values: {}", top.join(", "));

    assert!(sv_err < 1e-4, "accelerator diverged from the golden model");
    Ok(())
}
