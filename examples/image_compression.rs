//! SVD image compression: the third application the paper's abstract
//! motivates ("data approximation, compression, and denoising").
//!
//! A synthetic smooth image is factorized on the accelerator; keeping
//! only the top-k singular triplets compresses it. The example reports
//! PSNR and compression ratio as the retained rank grows, plus the
//! simulated accelerator latency for the factorization.
//!
//! ```text
//! cargo run --release --example image_compression
//! ```

use heterosvd_repro::heterosvd::{Accelerator, HeteroSvdConfig};
use heterosvd_repro::svd_kernels::Matrix;

/// A smooth synthetic "image": a sum of low-frequency ripples (highly
/// compressible) plus mild texture.
fn synthetic_image(n: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |r, c| {
        let (x, y) = (r as f64 / n as f64, c as f64 / n as f64);
        128.0
            + 60.0 * (2.0 * std::f64::consts::PI * x).sin() * (2.0 * std::f64::consts::PI * y).cos()
            + 30.0 * (6.0 * std::f64::consts::PI * (x + y)).sin()
            + 10.0
                * (14.0 * std::f64::consts::PI * x).cos()
                * (10.0 * std::f64::consts::PI * y).sin()
    })
}

fn psnr(original: &Matrix<f64>, approx: &Matrix<f64>) -> f64 {
    let n = (original.rows() * original.cols()) as f64;
    let mse = original
        .sub(approx)
        .expect("same shape")
        .frobenius_norm()
        .powi(2)
        / n;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        20.0 * (255.0 / mse.sqrt()).log10()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 128;
    let image = synthetic_image(n);

    let config = HeteroSvdConfig::builder(n, n)
        .engine_parallelism(8)
        .precision(1e-6)
        .build()?;
    let out = Accelerator::new(config)?.run(&image)?;
    println!("== SVD image compression ({n}x{n} synthetic image) ==");
    println!(
        "factorized in {} iterations, {:.3} ms simulated latency, rank {} at 1e-6",
        out.result.sweeps,
        out.timing.task_time.as_millis(),
        out.result.rank(1e-6)
    );

    let image32 = image.cast::<f32>();
    println!(
        "\n{:>6} {:>12} {:>12} {:>14}",
        "rank", "PSNR (dB)", "storage", "compression"
    );
    let full_storage = n * n;
    let mut reached_40db_rank = None;
    for k in [1usize, 2, 4, 8, 16, 32] {
        let approx32 = out.result.low_rank_approximation(&image32, k)?;
        let approx: Matrix<f64> = approx32.cast();
        let quality = psnr(&image, &approx);
        // Rank-k storage: k * (m + n + 1) values.
        let storage = k * (2 * n + 1);
        println!(
            "{k:>6} {quality:>12.2} {storage:>12} {:>13.1}x",
            full_storage as f64 / storage as f64
        );
        if quality > 40.0 && reached_40db_rank.is_none() {
            reached_40db_rank = Some(k);
        }
    }

    let k40 = reached_40db_rank.expect("smooth image must compress well");
    println!(
        "\n>40 dB PSNR at rank {k40}: {:.0}x compression",
        full_storage as f64 / (k40 * (2 * n + 1)) as f64
    );
    assert!(
        k40 <= 16,
        "smooth synthetic image should compress by rank 16"
    );
    Ok(())
}
