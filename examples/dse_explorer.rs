//! Design-space explorer: sweep the micro-architecture space for a
//! problem size and print the feasible frontier (§IV-C, Fig. 8).
//!
//! ```text
//! cargo run --release --example dse_explorer -- 256 100
//! ```
//!
//! Arguments: matrix size (default 256) and batch size (default 100).

use heterosvd_repro::dse::{run_dse, DseConfig, Objective};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let batch: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);

    let start = std::time::Instant::now();
    let result = run_dse(&DseConfig::new(n, n).batch(batch).iterations(6));
    let elapsed = start.elapsed();

    println!("== DSE sweep: {n}x{n}, batch {batch}, 6 iterations ==");
    println!(
        "{} feasible / {} candidates in {:.1} ms\n",
        result.evaluations.len(),
        result.evaluations.len() + result.infeasible,
        elapsed.as_secs_f64() * 1e3
    );

    println!(
        "{:>6} {:>6} | {:>9} | {:>5} {:>5} {:>5} | {:>11} {:>11} {:>8} {:>8} | {:<14}",
        "P_eng",
        "P_task",
        "freq(MHz)",
        "AIE",
        "URAM",
        "PLIO",
        "latency(ms)",
        "tput(t/s)",
        "power",
        "EE",
        "bottleneck"
    );
    // Print the stage-1 frontier: max P_task per P_eng.
    for e in result.max_task_points() {
        println!(
            "{:>6} {:>6} | {:>9.1} | {:>5} {:>5} {:>5} | {:>11.3} {:>11.1} {:>8.2} {:>8.3} | {:<14}",
            e.point.engine_parallelism,
            e.point.task_parallelism,
            e.point.pl_freq_mhz,
            e.usage.aie,
            e.usage.uram,
            e.usage.plio,
            e.latency.as_millis(),
            e.throughput,
            e.power_watts,
            e.energy_efficiency,
            format!("{:?}", e.bottleneck)
        );
    }

    println!();
    for (label, objective) in [
        ("minimum latency", Objective::MinLatency),
        ("maximum throughput", Objective::MaxThroughput),
        ("maximum energy efficiency", Objective::MaxEnergyEfficiency),
    ] {
        if let Some(best) = result.best(objective) {
            println!(
                "best for {label:<26}: P_eng={} P_task={} @ {:.0} MHz -> {:.3} ms, {:.1} t/s, {:.2} W",
                best.point.engine_parallelism,
                best.point.task_parallelism,
                best.point.pl_freq_mhz,
                best.latency.as_millis(),
                best.throughput,
                best.power_watts
            );
        }
    }
}
