//! `hsvd` — command-line front end for the HeteroSVD reproduction.
//!
//! ```text
//! hsvd run --random 128                 # factorize a seeded random 128x128 matrix
//! hsvd run matrix.csv --p-eng 8         # factorize a CSV matrix
//! hsvd serve-bench --requests 200 --workers 4 --seed 7
//! ```
//!
//! `run` prints the singular values and the simulated hardware
//! statistics (optionally writing `Σ` and `U` to CSV); `serve-bench`
//! drives the batch-serving runtime with a seeded open-loop workload and
//! reports throughput and latency percentiles. For compatibility with
//! pre-subcommand invocations, `hsvd matrix.csv` is treated as
//! `hsvd run matrix.csv`.

use heterosvd_bench::workload::{bursty_trace, multishape_trace, shifting_mix_phases};
use heterosvd_repro::heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig};
use heterosvd_repro::serve::{
    ClientId, ModelId, ServeConfig, ServeError, SloClass, SubmitOptions, SvdService,
};
use heterosvd_repro::svd_kernels::{io as matrix_io, Matrix};
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- args

/// Shared flag cursor: walks an argument list handing out flag values
/// with uniform error messages. Both subcommands parse through this.
struct ArgCursor {
    args: std::vec::IntoIter<String>,
}

impl ArgCursor {
    fn new(args: Vec<String>) -> Self {
        ArgCursor {
            args: args.into_iter(),
        }
    }

    fn next(&mut self) -> Option<String> {
        self.args.next()
    }

    /// The raw value following a flag.
    fn value(&mut self, flag: &str) -> Result<String, String> {
        self.args
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))
    }

    /// The parsed value following a flag.
    fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.value(flag)?
            .parse()
            .map_err(|e| format!("invalid value for {flag}: {e}"))
    }
}

fn usage() -> &'static str {
    "usage: hsvd <command> [options]\n\
     \n\
     commands:\n\
       run          factorize one matrix on the simulated accelerator\n\
       serve-bench  benchmark the batch-serving runtime\n\
     \n\
     run [matrix.csv | --random N] [options]:\n\
       --random N          factorize a seeded random NxN matrix\n\
       --seed S            RNG seed for --random (default 1)\n\
       --p-eng K           engine parallelism, 1..=11 (default 4)\n\
       --p-task T          task parallelism, 1..=26 (default 1)\n\
       --freq MHZ          PL frequency (default: achievable)\n\
       --precision EPS     convergence threshold (default 1e-6)\n\
       --iterations N      fixed iteration count instead of convergence\n\
       --sigma-out FILE    write singular values to a CSV file\n\
       --u-out FILE        write U to a CSV file\n\
     \n\
     serve-bench [options]:\n\
       --requests N        number of requests to submit (default 200)\n\
       --workers W         accelerator replicas (default 4)\n\
       --seed S            workload RNG seed (default 7)\n\
       --rate RPS          open-loop arrival rate, req/s (default 5000)\n\
       --queue-cap N       admission queue bound (default 128)\n\
       --max-batch B       dynamic batcher size cap (default 8)\n\
       --linger-us U       batcher linger budget in µs (default 500)\n\
       --p-eng K           engine parallelism per replica (default 2)\n\
       --p-task T          task parallelism per replica (default 4)\n\
       --fn-par N          host threads per functional orth-layer\n\
     \x20                   (default 1 = serial; results are bit-identical\n\
     \x20                   for any setting)\n\
       --timing-only       skip numerics (timing model, 6 fixed sweeps;\n\
     \x20                   incompatible with --apply-ratio)\n\
       --shape RxC         fix every request to one RxC shape (default:\n\
     \x20                   a seeded mix of four shapes)\n\
       --apply-ratio R     mixed traffic: R rank-r apply requests per\n\
     \x20                   decompose request (default 0 = decompose\n\
     \x20                   only); models are published up front and\n\
     \x20                   applies are served from the factor store\n\
       --models M          distinct models to publish for mixed traffic\n\
     \x20                   (default 4)\n\
       --update-ratio R    incremental traffic: R update requests per\n\
     \x20                   decompose request (default 0 = none); each\n\
     \x20                   update perturbs a per-client hot matrix and\n\
     \x20                   the service routes it warm-start / low-rank /\n\
     \x20                   full recompute (incompatible with\n\
     \x20                   --timing-only)\n\
       --clients N         distinct hot-matrix clients for update\n\
     \x20                   traffic (default 4)\n\
       --rank R            published truncation rank (default cols/4,\n\
     \x20                   at least 1)\n\
       --packing on|off    multi-problem array packing: co-schedule a\n\
     \x20                   same-shape batch as tenants on disjoint\n\
     \x20                   sub-arrays (default on). With the same --seed,\n\
     \x20                   on/off runs replay the identical trace for a\n\
     \x20                   packed-vs-sequential A/B\n\
       --autoscale on|off  closed-loop online DSE: a controller thread\n\
     \x20                   observes the served mix, re-runs the Eq. 15-16\n\
     \x20                   sweep, and hot-swaps the plan with\n\
     \x20                   drain-and-replace semantics (default off).\n\
     \x20                   Factors stay bit-identical across swaps\n\
       --trace bursty      replay the canonical shifting-mix bursty trace\n\
     \x20                   (large-matrix singles, then deep small-matrix\n\
     \x20                   bursts, then singles; same generator as\n\
     \x20                   `repro -- dse`) instead of the Poisson stream;\n\
     \x20                   ignores --requests/--rate, incompatible with\n\
     \x20                   --shape/--apply-ratio/--update-ratio. With the\n\
     \x20                   same --seed, --autoscale on/off runs replay\n\
     \x20                   the identical trace for an adaptive-vs-static\n\
     \x20                   A/B\n\
       --trace multishape  replay the 95:5 two-shape trace shared with\n\
     \x20                   `repro -- serve`: dominant 32x32 batch-class\n\
     \x20                   bursts plus rare 64x64 interactive-class\n\
     \x20                   singles (classes fixed per shape). Same\n\
     \x20                   constraints as --trace bursty; with the same\n\
     \x20                   --seed, --classed on/off runs replay the\n\
     \x20                   identical trace for a scheduler A/B\n\
       --classed on|off    shape-classed SLO-aware scheduling: per-class\n\
     \x20                   EDF sub-queues with eviction, load shedding\n\
     \x20                   (lowest class first), and work stealing across\n\
     \x20                   replica sub-pools (default off = shape-blind\n\
     \x20                   FIFO). Factors are bit-identical either way\n\
       --class C           SLO class stamped on decompose requests:\n\
     \x20                   interactive|standard|batch (default standard;\n\
     \x20                   incompatible with --trace multishape, which\n\
     \x20                   assigns classes per shape)\n\
       --shed-threshold F  timed-out/throughput fraction in (0,1] above\n\
     \x20                   which the classed scheduler starts shedding\n\
     \x20                   batch-class admissions (default 0.3; needs\n\
     \x20                   --classed on)\n\
       --metrics-out FILE  write the end-of-run metrics report to FILE\n\
     \x20                   as JSON and to FILE with a .prom extension in\n\
     \x20                   Prometheus text format (counters, percentiles,\n\
     \x20                   span-stage summaries, per-shape resource\n\
     \x20                   utilization + critical resource)"
}

// ---------------------------------------------------------------- run

struct RunArgs {
    input: Option<String>,
    random: Option<usize>,
    seed: u64,
    p_eng: usize,
    p_task: usize,
    freq_mhz: Option<f64>,
    precision: f64,
    iterations: Option<usize>,
    sigma_out: Option<String>,
    u_out: Option<String>,
}

fn parse_run_args(mut cursor: ArgCursor) -> Result<RunArgs, String> {
    let mut args = RunArgs {
        input: None,
        random: None,
        seed: 1,
        p_eng: 4,
        p_task: 1,
        freq_mhz: None,
        precision: 1e-6,
        iterations: None,
        sigma_out: None,
        u_out: None,
    };
    while let Some(arg) = cursor.next() {
        match arg.as_str() {
            "--random" => args.random = Some(cursor.parse("--random")?),
            "--seed" => args.seed = cursor.parse("--seed")?,
            "--p-eng" => args.p_eng = cursor.parse("--p-eng")?,
            "--p-task" => args.p_task = cursor.parse("--p-task")?,
            "--freq" => args.freq_mhz = Some(cursor.parse("--freq")?),
            "--precision" => args.precision = cursor.parse("--precision")?,
            "--iterations" => args.iterations = Some(cursor.parse("--iterations")?),
            "--sigma-out" => args.sigma_out = Some(cursor.value("--sigma-out")?),
            "--u-out" => args.u_out = Some(cursor.value("--u-out")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            other => args.input = Some(other.to_string()),
        }
    }
    if args.input.is_none() && args.random.is_none() {
        return Err(usage().to_string());
    }
    Ok(args)
}

fn cmd_run(cursor: ArgCursor) -> Result<(), String> {
    let args = parse_run_args(cursor)?;

    let a = match (&args.input, args.random) {
        (Some(path), _) => matrix_io::read_csv_path(path).map_err(|e| e.to_string())?,
        (None, Some(n)) => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);
            Matrix::from_fn(n, n, |r, c| {
                let v: f64 = rng.gen_range(-1.0..1.0);
                if r == c {
                    v + 2.0
                } else {
                    v
                }
            })
        }
        _ => unreachable!("validated in parse_run_args"),
    };

    // Transpose wide matrices (the one-sided method needs rows >= cols).
    let (a, transposed) = if a.rows() < a.cols() {
        (a.transpose(), true)
    } else {
        (a, false)
    };
    if transposed {
        eprintln!(
            "note: input is wide; factorizing the transpose ({}x{})",
            a.rows(),
            a.cols()
        );
    }

    // Adapt the requested engine parallelism to the problem and pad the
    // matrix with zero rows/columns to a valid shape: zero-padding leaves
    // the (nonzero) singular values untouched, and the noise-floor gate
    // handles the padded zero columns.
    let orig_cols = a.cols();
    let p_eng = (1..=args.p_eng.clamp(1, 11))
        .rev()
        .min_by_key(|k| {
            let padded = orig_cols.div_ceil(2 * k) * 2 * k;
            (padded - orig_cols, args.p_eng.abs_diff(*k))
        })
        .unwrap_or(1);
    let padded_cols = orig_cols.div_ceil(2 * p_eng) * 2 * p_eng;
    let padded_rows = a.rows().max(padded_cols);
    let a = if padded_cols != orig_cols || padded_rows != a.rows() {
        eprintln!(
            "note: padding {}x{} to {}x{} (P_eng {})",
            a.rows(),
            orig_cols,
            padded_rows,
            padded_cols,
            p_eng
        );
        let src = a;
        Matrix::from_fn(padded_rows, padded_cols, |r, c| {
            if r < src.rows() && c < src.cols() {
                src[(r, c)]
            } else {
                0.0
            }
        })
    } else {
        a
    };

    let mut builder = HeteroSvdConfig::builder(a.rows(), a.cols())
        .engine_parallelism(p_eng)
        .task_parallelism(args.p_task)
        .precision(args.precision);
    if let Some(mhz) = args.freq_mhz {
        builder = builder.pl_freq_mhz(mhz);
    }
    if let Some(iters) = args.iterations {
        builder = builder.fixed_iterations(iters);
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    let accelerator = Accelerator::new(config).map_err(|e| e.to_string())?;
    let out = accelerator.run(&a).map_err(|e| e.to_string())?;

    let mut svs = out.result.sorted_singular_values();
    svs.truncate(orig_cols); // drop the padded zero columns' values
    println!("singular values ({}):", svs.len());
    let shown = svs.len().min(16);
    let line: Vec<String> = svs[..shown].iter().map(|s| format!("{s:.6}")).collect();
    println!(
        "  {}{}",
        line.join(", "),
        if svs.len() > shown { ", ..." } else { "" }
    );
    println!(
        "converged in {} iterations; simulated latency {:.3} ms on {} AIEs ({} DMA transfers)",
        out.result.sweeps,
        out.timing.task_time.as_millis(),
        out.usage.aie,
        out.stats.dma_transfers
    );

    if let Some(path) = &args.sigma_out {
        let sigma = Matrix::from_fn(svs.len(), 1, |r, _| svs[r] as f64);
        matrix_io::write_csv_path(&sigma, path).map_err(|e| e.to_string())?;
        println!("wrote sigma to {path}");
    }
    if let Some(path) = &args.u_out {
        matrix_io::write_csv_path(&out.result.u, path).map_err(|e| e.to_string())?;
        println!("wrote U to {path}");
    }
    Ok(())
}

// ---------------------------------------------------------- serve-bench

/// Arrival process replayed by `serve-bench`.
#[derive(Clone, Copy, PartialEq)]
#[cfg_attr(test, derive(Debug))]
enum TraceKind {
    /// Seeded Poisson stream over the four-shape mix (the default).
    Poisson,
    /// The canonical shifting-mix bursty trace (`repro -- dse`).
    Bursty,
    /// The 95:5 two-shape trace (`repro -- serve`): dominant Batch-class
    /// small-matrix bursts plus rare Interactive-class larger singles.
    Multishape,
}

#[cfg_attr(test, derive(Debug))]
struct BenchArgs {
    requests: usize,
    workers: usize,
    seed: u64,
    rate: f64,
    queue_cap: usize,
    max_batch: usize,
    linger_us: u64,
    p_eng: usize,
    p_task: usize,
    functional_parallelism: usize,
    timing_only: bool,
    shape: Option<(usize, usize)>,
    apply_ratio: f64,
    models: usize,
    rank: Option<usize>,
    update_ratio: f64,
    clients: usize,
    metrics_out: Option<String>,
    packing: bool,
    autoscale: bool,
    trace: TraceKind,
    classed: bool,
    class: Option<SloClass>,
    shed_threshold: Option<f64>,
}

/// Parses a `RxC` (or bare `N`, meaning NxN) shape argument.
fn parse_shape(value: &str) -> Result<(usize, usize), String> {
    let err = || format!("invalid value for --shape: {value} (expected RxC, e.g. 256x256)");
    match value.split_once(['x', 'X']) {
        Some((r, c)) => {
            let rows = r.trim().parse().map_err(|_| err())?;
            let cols = c.trim().parse().map_err(|_| err())?;
            Ok((rows, cols))
        }
        None => {
            let n = value.trim().parse().map_err(|_| err())?;
            Ok((n, n))
        }
    }
}

fn parse_bench_args(mut cursor: ArgCursor) -> Result<BenchArgs, String> {
    let mut args = BenchArgs {
        requests: 200,
        workers: 4,
        seed: 7,
        rate: 5000.0,
        queue_cap: 128,
        max_batch: 8,
        linger_us: 500,
        p_eng: 2,
        p_task: 4,
        functional_parallelism: 1,
        timing_only: false,
        shape: None,
        apply_ratio: 0.0,
        models: 4,
        rank: None,
        update_ratio: 0.0,
        clients: 4,
        metrics_out: None,
        packing: true,
        autoscale: false,
        trace: TraceKind::Poisson,
        classed: false,
        class: None,
        shed_threshold: None,
    };
    while let Some(arg) = cursor.next() {
        match arg.as_str() {
            "--requests" => args.requests = cursor.parse("--requests")?,
            "--workers" => args.workers = cursor.parse("--workers")?,
            "--seed" => args.seed = cursor.parse("--seed")?,
            "--rate" => args.rate = cursor.parse("--rate")?,
            "--queue-cap" => args.queue_cap = cursor.parse("--queue-cap")?,
            "--max-batch" => args.max_batch = cursor.parse("--max-batch")?,
            "--linger-us" => args.linger_us = cursor.parse("--linger-us")?,
            "--p-eng" => args.p_eng = cursor.parse("--p-eng")?,
            "--p-task" => args.p_task = cursor.parse("--p-task")?,
            "--fn-par" => args.functional_parallelism = cursor.parse("--fn-par")?,
            "--timing-only" => args.timing_only = true,
            "--shape" => args.shape = Some(parse_shape(&cursor.value("--shape")?)?),
            "--apply-ratio" => args.apply_ratio = cursor.parse("--apply-ratio")?,
            "--models" => args.models = cursor.parse("--models")?,
            "--rank" => args.rank = Some(cursor.parse("--rank")?),
            "--update-ratio" => args.update_ratio = cursor.parse("--update-ratio")?,
            "--clients" => args.clients = cursor.parse("--clients")?,
            "--metrics-out" => args.metrics_out = Some(cursor.value("--metrics-out")?),
            "--packing" => {
                args.packing = match cursor.value("--packing")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(format!(
                            "invalid value for --packing: {other} (expected on|off)"
                        ))
                    }
                }
            }
            "--autoscale" => {
                args.autoscale = match cursor.value("--autoscale")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(format!(
                            "invalid value for --autoscale: {other} (expected on|off)"
                        ))
                    }
                }
            }
            "--trace" => {
                args.trace = match cursor.value("--trace")?.as_str() {
                    "bursty" => TraceKind::Bursty,
                    "multishape" => TraceKind::Multishape,
                    "poisson" => TraceKind::Poisson,
                    other => {
                        return Err(format!(
                            "invalid value for --trace: {other} \
                             (expected bursty|multishape|poisson)"
                        ))
                    }
                }
            }
            "--classed" => {
                args.classed = match cursor.value("--classed")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(format!(
                            "invalid value for --classed: {other} (expected on|off)"
                        ))
                    }
                }
            }
            "--class" => args.class = Some(SloClass::parse(&cursor.value("--class")?)?),
            "--shed-threshold" => args.shed_threshold = Some(cursor.parse("--shed-threshold")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if args.requests == 0 {
        return Err("serve-bench needs --requests >= 1".to_string());
    }
    // `!(x > 0.0)` instead of `x <= 0.0`: the latter lets NaN through.
    if !(args.rate.is_finite() && args.rate > 0.0) {
        return Err("serve-bench needs a finite --rate > 0".to_string());
    }
    if !(args.apply_ratio.is_finite() && args.apply_ratio >= 0.0) {
        return Err("serve-bench needs a finite --apply-ratio >= 0".to_string());
    }
    if args.apply_ratio > 0.0 {
        if args.models == 0 {
            return Err("mixed traffic needs --models >= 1".to_string());
        }
        if args.timing_only {
            return Err("apply traffic is served from real published factors; \
                 --apply-ratio is incompatible with --timing-only"
                .to_string());
        }
    }
    if args.rank == Some(0) {
        return Err("serve-bench needs --rank >= 1".to_string());
    }
    if args.trace != TraceKind::Poisson {
        let name = if args.trace == TraceKind::Bursty {
            "bursty"
        } else {
            "multishape"
        };
        if args.shape.is_some() {
            return Err(format!(
                "--trace {name} carries its own shape mix; incompatible with --shape"
            ));
        }
        if args.apply_ratio > 0.0 || args.update_ratio > 0.0 {
            return Err(format!(
                "--trace {name} is decompose-only; incompatible \
                 with --apply-ratio/--update-ratio"
            ));
        }
    }
    if args.trace == TraceKind::Multishape && args.class.is_some() {
        return Err("--trace multishape assigns classes per shape (rare = \
             interactive, dominant = batch); incompatible with --class"
            .to_string());
    }
    if let Some(t) = args.shed_threshold {
        if !(t.is_finite() && t > 0.0 && t <= 1.0) {
            return Err("serve-bench needs --shed-threshold in (0, 1]".to_string());
        }
        if !args.classed {
            return Err("--shed-threshold drives the classed scheduler's \
                 load shedding; needs --classed on"
                .to_string());
        }
    }
    if !(args.update_ratio.is_finite() && args.update_ratio >= 0.0) {
        return Err("serve-bench needs a finite --update-ratio >= 0".to_string());
    }
    if args.update_ratio > 0.0 {
        if args.clients == 0 {
            return Err("update traffic needs --clients >= 1".to_string());
        }
        if args.timing_only {
            return Err("incremental updates warm-start from real factors; \
                 --update-ratio is incompatible with --timing-only"
                .to_string());
        }
    }
    Ok(args)
}

fn cmd_serve_bench(cursor: ArgCursor) -> Result<(), String> {
    let args = parse_bench_args(cursor)?;

    let service = SvdService::start(ServeConfig {
        workers: args.workers,
        queue_capacity: args.queue_cap,
        max_batch: args.max_batch,
        max_linger: Duration::from_micros(args.linger_us),
        engine_parallelism: args.p_eng,
        task_parallelism: args.p_task,
        functional_parallelism: args.functional_parallelism,
        fidelity: if args.timing_only {
            FidelityMode::TimingOnly
        } else {
            FidelityMode::Functional
        },
        // Timing-only fidelity cannot estimate convergence, so pin the
        // sweep count to the paper's typical iteration budget.
        fixed_iterations: args.timing_only.then_some(6),
        array_packing: args.packing,
        autoscale: args.autoscale,
        incremental: args.update_ratio > 0.0,
        shape_classed: args.classed,
        shed_threshold: args
            .shed_threshold
            .unwrap_or(ServeConfig::default().shed_threshold),
        ..ServeConfig::default()
    })
    .map_err(|e| e.to_string())?;

    // The workload is generated up front from the seed so the matrices
    // (and hence every functional result) are deterministic; the arrival
    // process replays exponential inter-arrival gaps open-loop.
    let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);
    let unit = 2 * args.p_eng;
    let shapes = match args.shape {
        // A fixed --shape pins every request (one plan, one utilization
        // row — e.g. `--shape 256x256 --p-eng 4` for the paper's design
        // point).
        Some((rows, cols)) => vec![(rows, cols)],
        None => vec![
            (2 * unit, 2 * unit),
            (3 * unit, 2 * unit),
            (3 * unit, 3 * unit),
            (4 * unit, 3 * unit),
        ],
    };
    let random_matrix = |rng: &mut rand::rngs::StdRng, rows: usize, cols: usize| {
        Matrix::from_fn(rows, cols, |r, c| {
            let v: f64 = rng.gen_range(-1.0..1.0);
            if r == c {
                v + 3.0
            } else {
                v
            }
        })
    };

    // Mixed traffic warms the factor store first: one published model
    // per `--models` slot (round-robin over the shape mix), waited to
    // completion so every later apply is a store hit.
    let mixed = args.apply_ratio > 0.0;
    let published: Vec<(ModelId, usize)> = if mixed {
        (0..args.models)
            .map(|m| {
                let (rows, cols) = shapes[m % shapes.len()];
                let rank = args.rank.unwrap_or((cols / 4).max(1));
                let model = ModelId(m as u64);
                service
                    .try_submit_publish(model, random_matrix(&mut rng, rows, cols), rank)
                    .and_then(|handle| handle.wait())
                    .map_err(|e| {
                        format!("publishing model {m} ({rows}x{cols} rank {rank}): {e}")
                    })?;
                Ok((model, cols))
            })
            .collect::<Result<_, String>>()?
    } else {
        Vec::new()
    };

    // Update traffic keeps one hot matrix per client: each update
    // request perturbs the client's current matrix (mostly small rank-1
    // bumps, an occasional large shock past the staleness bound) and
    // resubmits it, so the service exercises the whole routing spectrum
    // — cold full solves, low-rank bumps, warm starts, and fallbacks.
    let update_traffic = args.update_ratio > 0.0;
    let mut client_state: Vec<Matrix<f64>> = if update_traffic {
        (0..args.clients)
            .map(|c| {
                let (rows, cols) = shapes[c % shapes.len()];
                random_matrix(&mut rng, rows, cols)
            })
            .collect()
    } else {
        Vec::new()
    };
    let mut client_updates = vec![0usize; client_state.len()];

    enum Work {
        Decompose(Matrix<f64>, SloClass),
        Apply {
            model: ModelId,
            x: Vec<f64>,
        },
        Update {
            client: ClientId,
            matrix: Matrix<f64>,
        },
    }
    // Class stamped on decompose traffic: --class when given, otherwise
    // Standard. The multishape trace overrides per shape below.
    let default_class = args.class.unwrap_or(SloClass::Standard);
    // Request-type mix: decompose weight 1, each ratio adds its own
    // weight. `p_apply` stays conditioned on "not an update", so with
    // --update-ratio 0 the draw sequence (and hence every checksum) is
    // unchanged.
    let p_update = args.update_ratio / (1.0 + args.apply_ratio + args.update_ratio);
    let p_apply = args.apply_ratio / (args.apply_ratio + 1.0);
    // `--trace bursty` replays the canonical shifting-mix trace shared
    // with `repro -- dse`, `--trace multishape` the 95:5 two-shape
    // trace shared with `repro -- serve` (absolute arrival offsets
    // converted to gaps); otherwise the Poisson stream below draws
    // `--requests` arrivals.
    let workload: Vec<(Work, f64)> = if args.trace != TraceKind::Poisson {
        let events = if args.trace == TraceKind::Bursty {
            bursty_trace(&shifting_mix_phases(false), args.seed)
        } else {
            multishape_trace(false, args.seed)
        };
        let mut prev_ms = 0.0;
        events
            .iter()
            .map(|e| {
                let gap_secs = (e.at_ms - prev_ms) / 1e3;
                prev_ms = e.at_ms;
                let matrix = heterosvd_bench::workload::random_matrix(e.shape.0, e.shape.1, e.seed);
                // Multishape carries the SLO split the classed scheduler
                // is benched on: the rare larger shape is Interactive,
                // the dominant burst shape is Batch.
                let class = if args.trace == TraceKind::Multishape {
                    if e.shape == (64, 64) {
                        SloClass::Interactive
                    } else {
                        SloClass::Batch
                    }
                } else {
                    default_class
                };
                (Work::Decompose(matrix, class), gap_secs)
            })
            .collect()
    } else {
        (0..args.requests)
            .map(|_| {
                let work = if update_traffic && rng.gen_bool(p_update) {
                    let c = rng.gen_range(0..client_state.len());
                    let a = &mut client_state[c];
                    client_updates[c] += 1;
                    // Every 10th update per client shocks the matrix hard
                    // enough to exceed the staleness bound (full-recompute
                    // fallback); every 10th offset by 5 drifts it with a
                    // perturbation wider than the default rank-8 low-rank
                    // budget (warm start); the rest are ~2% rank-1 bumps
                    // the low-rank fast path absorbs.
                    let (rel, rank) = match client_updates[c] % 10 {
                        0 => (0.5, 1),
                        5 => (0.08, 12),
                        _ => (0.02, 1),
                    };
                    for _ in 0..rank {
                        let u: Vec<f64> = (0..a.rows()).map(|_| rng.gen_range(-1.0..1.0)).collect();
                        let v: Vec<f64> = (0..a.cols()).map(|_| rng.gen_range(-1.0..1.0)).collect();
                        let u_norm = u.iter().map(|x| x * x).sum::<f64>().sqrt();
                        let v_norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                        let scale = rel / rank as f64 * a.frobenius_norm()
                            / (u_norm * v_norm).max(f64::MIN_POSITIVE);
                        for col in 0..a.cols() {
                            for row in 0..a.rows() {
                                a[(row, col)] += scale * u[row] * v[col];
                            }
                        }
                    }
                    Work::Update {
                        client: ClientId(c as u64),
                        matrix: a.clone(),
                    }
                } else if mixed && rng.gen_bool(p_apply) {
                    let (model, cols) = published[rng.gen_range(0..published.len())];
                    let x: Vec<f64> = (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    Work::Apply { model, x }
                } else {
                    let (rows, cols) = shapes[rng.gen_range(0..shapes.len())];
                    Work::Decompose(random_matrix(&mut rng, rows, cols), default_class)
                };
                let u: f64 = rng.gen_range(1e-9..1.0);
                let gap_secs = -u.ln() / args.rate;
                (work, gap_secs)
            })
            .collect()
    };

    if args.trace == TraceKind::Multishape {
        println!(
            "serve-bench: {} requests from the 95:5 multishape trace (dominant 32x32 batch-class, \
             rare 64x64 interactive-class), {} workers, seed {}, scheduler {}",
            workload.len(),
            args.workers,
            args.seed,
            if args.classed {
                "shape-classed"
            } else {
                "fifo"
            },
        );
    } else if args.trace == TraceKind::Bursty {
        println!(
            "serve-bench: {} requests from the shifting-mix bursty trace, {} workers, seed {}, autoscale {}",
            workload.len(),
            args.workers,
            args.seed,
            if args.autoscale { "on" } else { "off" },
        );
    } else {
        println!(
            "serve-bench: {} requests, {} workers, seed {}, ~{:.0} req/s open-loop{}",
            args.requests,
            args.workers,
            args.seed,
            args.rate,
            match (mixed, update_traffic) {
                (true, true) => format!(
                    " (mixed, {} applies + {} updates per decompose, {} models, {} clients)",
                    args.apply_ratio,
                    args.update_ratio,
                    published.len(),
                    client_state.len()
                ),
                (true, false) => format!(
                    " (mixed, {} applies per decompose over {} models)",
                    args.apply_ratio,
                    published.len()
                ),
                (false, true) => format!(
                    " ({} updates per decompose over {} clients)",
                    args.update_ratio,
                    client_state.len()
                ),
                (false, false) => String::new(),
            }
        );
    }

    enum BenchHandle {
        Decompose(heterosvd_repro::serve::RequestHandle),
        Apply(heterosvd_repro::serve::ApplyHandle),
        Update(heterosvd_repro::serve::UpdateHandle),
    }
    let bench_start = Instant::now();
    let mut next_arrival = Instant::now();
    let mut handles = Vec::with_capacity(args.requests);
    let mut dropped = 0u64;
    for (work, gap_secs) in workload {
        next_arrival += Duration::from_secs_f64(gap_secs);
        let now = Instant::now();
        if next_arrival > now {
            std::thread::sleep(next_arrival - now);
        }
        let admitted = match work {
            Work::Decompose(matrix, class) => service
                .try_submit_with(
                    matrix,
                    SubmitOptions {
                        class,
                        ..SubmitOptions::default()
                    },
                )
                .map(BenchHandle::Decompose),
            Work::Apply { model, x } => service
                .try_submit_apply(model, &x, None)
                .map(BenchHandle::Apply),
            Work::Update { client, matrix } => service
                .try_submit_update(client, matrix)
                .map(BenchHandle::Update),
        };
        match admitted {
            Ok(handle) => handles.push(handle),
            // Open-loop: an over-capacity or load-shed arrival is
            // dropped, not retried (the shed split is in the metrics).
            Err(ServeError::QueueFull { .. }) | Err(ServeError::Overloaded) => dropped += 1,
            Err(other) => return Err(other.to_string()),
        }
    }

    let mut sigma_checksum = 0.0f64;
    let mut apply_checksum = 0.0f64;
    let mut update_checksum = 0.0f64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    for handle in handles {
        match handle {
            BenchHandle::Decompose(handle) => match handle.wait() {
                Ok(response) => {
                    completed += 1;
                    sigma_checksum += response
                        .output
                        .result
                        .sigma
                        .iter()
                        .map(|&s| s as f64)
                        .sum::<f64>();
                }
                Err(_) => failed += 1,
            },
            BenchHandle::Apply(handle) => match handle.wait() {
                Ok(response) => {
                    completed += 1;
                    apply_checksum += response.y.iter().map(|&v| v as f64).sum::<f64>();
                }
                Err(_) => failed += 1,
            },
            BenchHandle::Update(handle) => match handle.wait() {
                Ok(response) => {
                    completed += 1;
                    update_checksum += response.sigma.iter().map(|&s| s as f64).sum::<f64>();
                }
                Err(_) => failed += 1,
            },
        }
    }
    let wall = bench_start.elapsed();
    service.shutdown();
    let report = service.metrics_report();
    let m = &report.snapshot;

    let us = |ps: u64| ps as f64 / 1e6;
    // The warm-up publishes are admitted through the same queue but are
    // not part of the measured traffic; keep the ledger line consistent
    // with the bench-local completed/failed counts.
    println!(
        "admitted {} | dropped at admission {} | completed {} | failed {}",
        m.submitted - published.len() as u64,
        dropped,
        completed,
        failed
    );
    println!(
        "batches {} | mean batch size {:.2} | worker panics {} | replicas spawned {}",
        m.batches_dispatched, m.mean_batch_size, m.worker_panics, m.replicas_spawned
    );
    println!(
        "array packing {} | packed waves {} | packed requests {}",
        if args.packing { "on" } else { "off" },
        m.packed_batches,
        m.packed_requests
    );
    if args.autoscale {
        println!(
            "autoscale on | plan swaps {} | dse runs {} | final plan P_eng={} P_task={} generation {}",
            m.plan_swaps,
            m.dse_runs,
            m.current_plan.engine_parallelism,
            m.current_plan.task_parallelism,
            m.current_plan.generation
        );
    }
    println!(
        "wall time {:.1} ms | throughput {:.0} req/s",
        wall.as_secs_f64() * 1e3,
        completed as f64 / wall.as_secs_f64()
    );
    if args.classed {
        // Per-SLO-class split: the whole point of the classed scheduler
        // is that these tails diverge by class, not by arrival order.
        for (name, c) in [
            ("interactive", &m.per_class.interactive),
            ("standard", &m.per_class.standard),
            ("batch", &m.per_class.batch),
        ] {
            println!(
                "class {name:>11}: submitted {} | ok {} | shed {} | wall p50/p99 {} / {} µs",
                c.submitted, c.completed_ok, c.shed, c.wall_us.p50, c.wall_us.p99
            );
        }
        println!(
            "shed total {} | shed level {} | batches stolen {}",
            m.shed, m.shed_level, m.batches_stolen
        );
    }
    println!(
        "queue wait   p50/p95/p99/max  {} / {} / {} / {} µs",
        m.queue_wait_us.p50, m.queue_wait_us.p95, m.queue_wait_us.p99, m.queue_wait_us.max
    );
    println!(
        "batch linger p50/p95/p99/max  {} / {} / {} / {} µs",
        m.batch_linger_us.p50, m.batch_linger_us.p95, m.batch_linger_us.p99, m.batch_linger_us.max
    );
    println!(
        "sim exec     p50/p95/p99/max  {:.3} / {:.3} / {:.3} / {:.3} µs (Eq. 14 charged time)",
        us(m.sim_exec_ps.p50),
        us(m.sim_exec_ps.p95),
        us(m.sim_exec_ps.p99),
        us(m.sim_exec_ps.max)
    );
    if args.timing_only {
        println!("sigma checksum n/a (timing-only fidelity)");
    } else {
        println!(
            "sigma checksum {sigma_checksum:.6} (deterministic for --seed {})",
            args.seed
        );
    }
    if mixed {
        println!(
            "apply checksum {apply_checksum:.6} (deterministic for --seed {})",
            args.seed
        );
        for (name, t) in [
            ("decompose", &m.per_type.decompose),
            ("apply", &m.per_type.apply),
        ] {
            println!(
                "{name:>9}: submitted {} | ok {} | timed out {}+{} | queue wait p50/p99 {} / {} µs | sim exec p50/p99 {:.3} / {:.3} µs",
                t.submitted,
                t.completed_ok,
                t.timed_out_at_batcher,
                t.timed_out_at_exec,
                t.queue_wait_us.p50,
                t.queue_wait_us.p99,
                us(t.sim_exec_ps.p50),
                us(t.sim_exec_ps.p99),
            );
        }
        let store = service.store().stats();
        let looked_up = store.hits + store.misses;
        println!(
            "factor store: {} models / {} bytes resident | {} publishes | hit rate {:.1}% ({} / {} lookups)",
            store.resident_models,
            store.resident_bytes,
            store.publishes,
            if looked_up > 0 {
                store.hits as f64 / looked_up as f64 * 100.0
            } else {
                0.0
            },
            store.hits,
            looked_up
        );
    }
    if update_traffic {
        println!(
            "update checksum {update_checksum:.6} (deterministic for --seed {})",
            args.seed
        );
        let t = &m.per_type.update;
        println!(
            "   update: submitted {} | ok {} | warm-start hits {} | low-rank hits {} | staleness fallbacks {} | queue wait p50/p99 {} / {} µs",
            t.submitted,
            t.completed_ok,
            m.warm_start_hits,
            m.lowrank_hits,
            m.staleness_fallbacks,
            t.queue_wait_us.p50,
            t.queue_wait_us.p99,
        );
        // The report's embedded snapshot already drained the stats
        // window; a second `stats()` call here would read an empty one.
        let cache = &report.caches.factor_cache;
        let looked_up = cache.hits + cache.misses;
        println!(
            "factor cache: {} clients / {} bytes resident | {} publishes | {} evictions | hit rate {:.1}% lifetime, {:.1}% window",
            cache.resident_clients,
            cache.resident_bytes,
            cache.publishes,
            cache.evictions,
            if looked_up > 0 {
                cache.hits as f64 / looked_up as f64 * 100.0
            } else {
                0.0
            },
            cache.hit_rate_window * 100.0
        );
    }

    // Per-shape resource utilization: which hardware resource bounds
    // each plan (the `*` marks the critical resource — see DESIGN.md
    // §12 for how this relates to the Eq. 8–14 timing terms).
    for shape in &report.utilization {
        let parts: Vec<String> = shape
            .report
            .resources
            .iter()
            .map(|r| {
                format!(
                    "{} {:.1}%{}",
                    r.kind.name(),
                    r.busy_fraction * 100.0,
                    if r.kind == shape.report.critical {
                        "*"
                    } else {
                        ""
                    }
                )
            })
            .collect();
        println!(
            "utilization {}x{}: {} (critical: {})",
            shape.rows,
            shape.cols,
            parts.join(" | "),
            shape.report.critical.name()
        );
    }

    if let Some(path) = &args.metrics_out {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        let prom_path = std::path::Path::new(path).with_extension("prom");
        std::fs::write(&prom_path, report.to_prometheus())
            .map_err(|e| format!("writing {}: {e}", prom_path.display()))?;
        println!(
            "wrote metrics to {path} (JSON) and {} (Prometheus)",
            prom_path.display()
        );
    }
    Ok(())
}

// --------------------------------------------------------------- main

fn run() -> Result<(), String> {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return Err(usage().to_string());
    }
    match argv[0].as_str() {
        "run" => cmd_run(ArgCursor::new(argv.split_off(1))),
        "serve-bench" => cmd_serve_bench(ArgCursor::new(argv.split_off(1))),
        "--help" | "-h" | "help" => Err(usage().to_string()),
        // Pre-subcommand compatibility: `hsvd matrix.csv [...]`.
        _ => cmd_run(ArgCursor::new(argv)),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            let _ = writeln!(std::io::stderr(), "{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(args: &[&str]) -> Result<BenchArgs, String> {
        parse_bench_args(ArgCursor::new(args.iter().map(|s| s.to_string()).collect()))
    }

    #[test]
    fn shape_parses_rxc_and_bare_n() {
        assert_eq!(parse_shape("256x256").unwrap(), (256, 256));
        assert_eq!(parse_shape("384X128").unwrap(), (384, 128));
        assert_eq!(parse_shape("64").unwrap(), (64, 64));
    }

    /// Malformed shapes come back as a single-line usage error naming
    /// the flag — never a panic.
    #[test]
    fn malformed_shape_is_a_one_line_usage_error() {
        for bad in ["12x", "x12", "axb", "", "12x12x12", "-4x4"] {
            let err = parse_shape(bad).expect_err(bad);
            assert!(err.contains("invalid value for --shape"), "{bad}: {err}");
            assert!(!err.contains('\n'), "multi-line error for {bad}: {err}");
        }
        let err = bench(&["--shape", "12x"]).unwrap_err();
        assert!(err.contains("invalid value for --shape"), "{err}");
    }

    #[test]
    fn mixed_traffic_flags_parse() {
        let args = bench(&["--apply-ratio", "20", "--models", "3", "--rank", "8"]).unwrap();
        assert_eq!(args.apply_ratio, 20.0);
        assert_eq!(args.models, 3);
        assert_eq!(args.rank, Some(8));
    }

    /// Out-of-range and non-finite rates/ratios are rejected with a
    /// one-line message (NaN must not slip through a `<=` comparison).
    #[test]
    fn out_of_range_numbers_are_rejected() {
        for bad in [
            vec!["--apply-ratio", "-1"],
            vec!["--apply-ratio", "NaN"],
            vec!["--apply-ratio", "inf"],
            vec!["--rate", "NaN"],
            vec!["--rate", "0"],
            vec!["--rate", "-5"],
            vec!["--rank", "0"],
            vec!["--requests", "0"],
            vec!["--apply-ratio", "4", "--models", "0"],
            vec!["--update-ratio", "-1"],
            vec!["--update-ratio", "NaN"],
            vec!["--update-ratio", "4", "--clients", "0"],
        ] {
            let err = bench(&bad).expect_err(&bad.join(" "));
            assert!(!err.contains('\n'), "multi-line error for {bad:?}: {err}");
        }
    }

    #[test]
    fn packing_flag_parses_and_defaults_on() {
        assert!(bench(&[]).unwrap().packing, "packing defaults on");
        assert!(!bench(&["--packing", "off"]).unwrap().packing);
        assert!(bench(&["--packing", "on"]).unwrap().packing);
        let err = bench(&["--packing", "maybe"]).unwrap_err();
        assert!(err.contains("invalid value for --packing"), "{err}");
        assert!(!err.contains('\n'), "multi-line error: {err}");
    }

    #[test]
    fn autoscale_flag_parses_and_defaults_off() {
        assert!(!bench(&[]).unwrap().autoscale, "autoscale defaults off");
        assert!(bench(&["--autoscale", "on"]).unwrap().autoscale);
        assert!(!bench(&["--autoscale", "off"]).unwrap().autoscale);
        let err = bench(&["--autoscale", "maybe"]).unwrap_err();
        assert!(err.contains("invalid value for --autoscale"), "{err}");
        assert!(!err.contains('\n'), "multi-line error: {err}");
    }

    #[test]
    fn trace_flag_parses_and_rejects_conflicts() {
        assert_eq!(bench(&[]).unwrap().trace, TraceKind::Poisson);
        assert_eq!(
            bench(&["--trace", "bursty"]).unwrap().trace,
            TraceKind::Bursty
        );
        assert_eq!(
            bench(&["--trace", "multishape"]).unwrap().trace,
            TraceKind::Multishape
        );
        assert_eq!(
            bench(&["--trace", "poisson"]).unwrap().trace,
            TraceKind::Poisson
        );
        let err = bench(&["--trace", "diurnal"]).unwrap_err();
        assert!(err.contains("invalid value for --trace"), "{err}");
        for trace in ["bursty", "multishape"] {
            for conflict in [
                vec!["--trace", trace, "--shape", "64x64"],
                vec!["--trace", trace, "--apply-ratio", "4"],
                vec!["--trace", trace, "--update-ratio", "2"],
            ] {
                let err = bench(&conflict).expect_err(&conflict.join(" "));
                assert!(err.contains(&format!("--trace {trace}")), "{err}");
                assert!(!err.contains('\n'), "multi-line error: {err}");
            }
        }
    }

    #[test]
    fn classed_scheduler_flags_parse() {
        let defaults = bench(&[]).unwrap();
        assert!(!defaults.classed, "classed defaults off");
        assert!(defaults.class.is_none(), "class defaults unset");
        assert!(defaults.shed_threshold.is_none());
        assert!(bench(&["--classed", "on"]).unwrap().classed);
        assert!(!bench(&["--classed", "off"]).unwrap().classed);
        let err = bench(&["--classed", "maybe"]).unwrap_err();
        assert!(err.contains("invalid value for --classed"), "{err}");
        assert_eq!(
            bench(&["--class", "interactive"]).unwrap().class,
            Some(SloClass::Interactive)
        );
        assert_eq!(
            bench(&["--class", "batch"]).unwrap().class,
            Some(SloClass::Batch)
        );
        let err = bench(&["--class", "gold"]).unwrap_err();
        assert!(err.contains("unknown SLO class"), "{err}");
        let args = bench(&["--classed", "on", "--shed-threshold", "0.5"]).unwrap();
        assert_eq!(args.shed_threshold, Some(0.5));
    }

    /// The shed threshold is meaningless without the classed scheduler,
    /// and must be a usable fraction.
    #[test]
    fn shed_threshold_is_validated() {
        for bad in [
            vec!["--classed", "on", "--shed-threshold", "0"],
            vec!["--classed", "on", "--shed-threshold", "1.5"],
            vec!["--classed", "on", "--shed-threshold", "NaN"],
            vec!["--shed-threshold", "0.5"],
        ] {
            let err = bench(&bad).expect_err(&bad.join(" "));
            assert!(
                err.contains("--shed-threshold") || err.contains("--classed"),
                "{err}"
            );
            assert!(!err.contains('\n'), "multi-line error: {err}");
        }
    }

    /// Classes are fixed per shape on the multishape trace; a global
    /// --class would silently contradict them.
    #[test]
    fn class_conflicts_with_multishape_trace() {
        let err = bench(&["--trace", "multishape", "--class", "interactive"]).unwrap_err();
        assert!(err.contains("--class"), "{err}");
        assert!(!err.contains('\n'), "multi-line error: {err}");
    }

    #[test]
    fn apply_ratio_conflicts_with_timing_only() {
        let err = bench(&["--apply-ratio", "4", "--timing-only"]).unwrap_err();
        assert!(err.contains("--timing-only"), "{err}");
    }

    #[test]
    fn update_traffic_flags_parse() {
        let args = bench(&["--update-ratio", "8", "--clients", "6"]).unwrap();
        assert_eq!(args.update_ratio, 8.0);
        assert_eq!(args.clients, 6);
        let defaults = bench(&[]).unwrap();
        assert_eq!(defaults.update_ratio, 0.0);
        assert_eq!(defaults.clients, 4);
    }

    /// Incremental updates warm-start from real cached factors, which
    /// timing-only fidelity never produces.
    #[test]
    fn update_ratio_conflicts_with_timing_only() {
        let err = bench(&["--update-ratio", "4", "--timing-only"]).unwrap_err();
        assert!(err.contains("--timing-only"), "{err}");
    }

    #[test]
    fn unknown_options_are_rejected() {
        let err = bench(&["--bogus"]).unwrap_err();
        assert!(err.contains("unknown option --bogus"), "{err}");
    }
}
