//! `hsvd` — command-line SVD through the simulated HeteroSVD accelerator.
//!
//! ```text
//! hsvd --random 128            # factorize a seeded random 128x128 matrix
//! hsvd matrix.csv              # factorize a CSV matrix (rows of comma-separated numbers)
//! hsvd matrix.csv --p-eng 8 --precision 1e-6 --sigma-out sigma.csv
//! ```
//!
//! Prints the singular values and the simulated hardware statistics;
//! optionally writes `Σ` and `U` to CSV files.

use heterosvd_repro::heterosvd::{Accelerator, HeteroSvdConfig};
use heterosvd_repro::svd_kernels::{io as matrix_io, Matrix};
use std::io::Write;
use std::process::ExitCode;

struct Args {
    input: Option<String>,
    random: Option<usize>,
    seed: u64,
    p_eng: usize,
    p_task: usize,
    freq_mhz: Option<f64>,
    precision: f64,
    iterations: Option<usize>,
    sigma_out: Option<String>,
    u_out: Option<String>,
}

fn usage() -> &'static str {
    "usage: hsvd [matrix.csv | --random N] [options]\n\
     \n\
     options:\n\
       --random N          factorize a seeded random NxN matrix\n\
       --seed S            RNG seed for --random (default 1)\n\
       --p-eng K           engine parallelism, 1..=11 (default 4)\n\
       --p-task T          task parallelism, 1..=26 (default 1)\n\
       --freq MHZ          PL frequency (default: achievable)\n\
       --precision EPS     convergence threshold (default 1e-6)\n\
       --iterations N      fixed iteration count instead of convergence\n\
       --sigma-out FILE    write singular values to a CSV file\n\
       --u-out FILE        write U to a CSV file"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        random: None,
        seed: 1,
        p_eng: 4,
        p_task: 1,
        freq_mhz: None,
        precision: 1e-6,
        iterations: None,
        sigma_out: None,
        u_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--random" => args.random = Some(value("--random")?.parse().map_err(|e| format!("{e}"))?),
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--p-eng" => args.p_eng = value("--p-eng")?.parse().map_err(|e| format!("{e}"))?,
            "--p-task" => args.p_task = value("--p-task")?.parse().map_err(|e| format!("{e}"))?,
            "--freq" => args.freq_mhz = Some(value("--freq")?.parse().map_err(|e| format!("{e}"))?),
            "--precision" => {
                args.precision = value("--precision")?.parse().map_err(|e| format!("{e}"))?
            }
            "--iterations" => {
                args.iterations = Some(value("--iterations")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--sigma-out" => args.sigma_out = Some(value("--sigma-out")?),
            "--u-out" => args.u_out = Some(value("--u-out")?),
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            other => args.input = Some(other.to_string()),
        }
    }
    if args.input.is_none() && args.random.is_none() {
        return Err(usage().to_string());
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    let a = match (&args.input, args.random) {
        (Some(path), _) => matrix_io::read_csv_path(path).map_err(|e| e.to_string())?,
        (None, Some(n)) => {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed);
            Matrix::from_fn(n, n, |r, c| {
                let v: f64 = rng.gen_range(-1.0..1.0);
                if r == c {
                    v + 2.0
                } else {
                    v
                }
            })
        }
        _ => unreachable!("validated in parse_args"),
    };

    // Transpose wide matrices (the one-sided method needs rows >= cols).
    let (a, transposed) = if a.rows() < a.cols() {
        (a.transpose(), true)
    } else {
        (a, false)
    };
    if transposed {
        eprintln!(
            "note: input is wide; factorizing the transpose ({}x{})",
            a.rows(),
            a.cols()
        );
    }

    // Adapt the requested engine parallelism to the problem and pad the
    // matrix with zero rows/columns to a valid shape: zero-padding leaves
    // the (nonzero) singular values untouched, and the noise-floor gate
    // handles the padded zero columns.
    let orig_cols = a.cols();
    let p_eng = (1..=args.p_eng.clamp(1, 11))
        .rev()
        .min_by_key(|k| {
            let padded = orig_cols.div_ceil(2 * k) * 2 * k;
            (padded - orig_cols, args.p_eng.abs_diff(*k))
        })
        .unwrap_or(1);
    let padded_cols = orig_cols.div_ceil(2 * p_eng) * 2 * p_eng;
    let padded_rows = a.rows().max(padded_cols);
    let a = if padded_cols != orig_cols || padded_rows != a.rows() {
        eprintln!(
            "note: padding {}x{} to {}x{} (P_eng {})",
            a.rows(),
            orig_cols,
            padded_rows,
            padded_cols,
            p_eng
        );
        let src = a;
        Matrix::from_fn(padded_rows, padded_cols, |r, c| {
            if r < src.rows() && c < src.cols() {
                src[(r, c)]
            } else {
                0.0
            }
        })
    } else {
        a
    };

    let mut builder = HeteroSvdConfig::builder(a.rows(), a.cols())
        .engine_parallelism(p_eng)
        .task_parallelism(args.p_task)
        .precision(args.precision);
    if let Some(mhz) = args.freq_mhz {
        builder = builder.pl_freq_mhz(mhz);
    }
    if let Some(iters) = args.iterations {
        builder = builder.fixed_iterations(iters);
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    let accelerator = Accelerator::new(config).map_err(|e| e.to_string())?;
    let out = accelerator.run(&a).map_err(|e| e.to_string())?;

    let mut svs = out.result.sorted_singular_values();
    svs.truncate(orig_cols); // drop the padded zero columns' values
    println!("singular values ({}):", svs.len());
    let shown = svs.len().min(16);
    let line: Vec<String> = svs[..shown].iter().map(|s| format!("{s:.6}")).collect();
    println!("  {}{}", line.join(", "), if svs.len() > shown { ", ..." } else { "" });
    println!(
        "converged in {} iterations; simulated latency {:.3} ms on {} AIEs ({} DMA transfers)",
        out.result.sweeps,
        out.timing.task_time.as_millis(),
        out.usage.aie,
        out.stats.dma_transfers
    );

    if let Some(path) = &args.sigma_out {
        let sigma = Matrix::from_fn(svs.len(), 1, |r, _| svs[r] as f64);
        matrix_io::write_csv_path(&sigma, path).map_err(|e| e.to_string())?;
        println!("wrote sigma to {path}");
    }
    if let Some(path) = &args.u_out {
        matrix_io::write_csv_path(&out.result.u, path).map_err(|e| e.to_string())?;
        println!("wrote U to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            let _ = writeln!(std::io::stderr(), "{msg}");
            ExitCode::FAILURE
        }
    }
}
