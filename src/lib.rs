#![warn(missing_docs)]

//! Umbrella crate for the HeteroSVD reproduction workspace.
//!
//! This crate re-exports the public API of every member crate so that the
//! workspace-level examples and integration tests can exercise the whole
//! system through a single dependency. Downstream users should normally
//! depend on the individual crates ([`heterosvd`], [`svd_kernels`], ...)
//! directly.
//!
//! # Quickstart
//!
//! ```
//! use heterosvd_repro::heterosvd::{Accelerator, HeteroSvdConfig};
//! use heterosvd_repro::svd_kernels::Matrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = Matrix::from_fn(16, 16, |r, c| ((r * 31 + c * 17) % 13) as f64 - 6.0);
//! let config = HeteroSvdConfig::builder(16, 16).engine_parallelism(2).build()?;
//! let output = Accelerator::new(config)?.run(&a)?;
//! assert!(output.result.reconstruction_error(&a.cast()) < 1e-4);
//! # Ok(())
//! # }
//! ```

pub use aie_sim;
pub use baselines;
pub use factor_store;
pub use heterosvd;
pub use heterosvd_dse as dse;
pub use heterosvd_serve as serve;
pub use perf_model;
pub use svd_kernels;
pub use svd_orderings as orderings;
