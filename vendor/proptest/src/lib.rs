#![warn(missing_docs)]

//! Offline stand-in for `proptest`.
//!
//! The crates-io mirror is unreachable in this build environment, so the
//! workspace vendors the property-testing surface it uses: the
//! [`proptest!`] macro, `prop_assert*` macros, range/tuple/collection
//! strategies, [`prelude::any`], and `prop::sample::select`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports the generated inputs
//!   verbatim instead of a minimized counterexample.
//! * **Deterministic seeding** — case `i` of test `t` always runs with a
//!   seed derived from `(t, i)`, so failures reproduce without a
//!   persistence file.
//! * Uniform sampling only (no edge-case biasing).

pub mod strategy;
pub mod test_runner;

/// Strategy constructors, mirroring proptest's `prop` module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::{FullRange, Strategy};

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// The strategy type returned by [`any`].
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy covering the whole domain.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` (the whole domain, uniform).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange::new()
                }
            }
        )*};
    }
    impl_arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

/// The glob-import surface used by test files.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                let mut __desc = ::std::string::String::new();
                $(
                    __desc.push_str(stringify!($arg));
                    __desc.push_str(" = ");
                    __desc.push_str(&::std::format!("{:?}; ", $arg));
                )+
                let __result = (move || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                })();
                (__desc, __result)
            });
        }
    )*};
}

/// Asserts a condition inside a property test, failing the case (with its
/// generated inputs) rather than panicking the whole harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, reporting both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// `prop_assert!` for inequality, reporting the value on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5f64..2.5, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!(matches!(b, true | false));
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(0u64..100, 2..8)) {
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_select(pair in (1u32..5, 10u32..20), pick in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(pair.0 < 5 && pair.1 >= 10);
            prop_assert!([2, 4, 8].contains(&pick));
        }

        #[test]
        fn prop_map_transforms(n in (0u8..10).prop_map(|v| v * 3)) {
            prop_assert_eq!(n % 3, 0);
            prop_assert_ne!(n, 31);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run(&ProptestConfig::with_cases(4), "doomed", |rng| {
                let x = crate::strategy::Strategy::generate(&(0u64..10), rng);
                (
                    format!("x = {x:?}; "),
                    Err(TestCaseError::fail("always fails".to_string())),
                )
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("always fails"), "{msg}");
        assert!(msg.contains("x = "), "{msg}");
    }

    #[test]
    fn panics_are_caught_as_failures() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run(&ProptestConfig::with_cases(2), "panicky", |_rng| {
                (String::new(), {
                    let v: Vec<u8> = vec![];
                    let _ = v[3];
                    Ok(())
                })
            });
        });
        assert!(result.is_err());
    }
}
