//! Value-generation strategies (uniform, non-shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying the generator.
    ///
    /// # Panics
    ///
    /// Panics (fails the test) if 1000 consecutive candidates are
    /// rejected — the predicate is then too strict for its base strategy.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive candidates: {}",
            self.reason
        );
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The full domain of a primitive type (see [`crate::arbitrary::any`]).
#[derive(Debug, Clone)]
pub struct FullRange<T> {
    _marker: PhantomData<T>,
}

impl<T> FullRange<T> {
    /// Creates the strategy.
    pub fn new() -> Self {
        FullRange {
            _marker: PhantomData,
        }
    }
}

impl<T> Default for FullRange<T> {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! impl_full_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen()
            }
        }
    )*};
}
impl_full_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Strategy for FullRange<f64> {
    type Value = f64;
    /// `any::<f64>()` generates finite values spanning many magnitudes
    /// (sign × exponent in ±300), not raw bit patterns.
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let mantissa: f64 = rng.rng().gen_range(-1.0..1.0);
        let exponent: i32 = rng.rng().gen_range(-300..300);
        mantissa * 10f64.powi(exponent)
    }
}

impl Strategy for FullRange<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let mantissa: f32 = rng.rng().gen_range(-1.0f32..1.0);
        let exponent: i32 = rng.rng().gen_range(-30..30);
        mantissa * 10f32.powi(exponent)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Element-count specification for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng().gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Picks uniformly from a fixed set of options.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng().gen_range(0..self.options.len());
        self.options[idx].clone()
    }
}
