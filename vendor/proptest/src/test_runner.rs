//! The case-execution loop: deterministic seeding, panic capture, and
//! failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were rejected (not used by the vendored strategies,
    /// kept for API familiarity).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies. Deterministic: case `i` of test `name`
/// always sees the same stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | 0x9E37)),
        }
    }

    /// The underlying generator (used by strategy implementations).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// Runs `config.cases` generated cases of the closure, which returns a
/// human-readable description of the generated inputs plus the case
/// outcome. Panics (failing the enclosing `#[test]`) on the first
/// violated case, echoing the inputs that triggered it.
pub fn run<F>(config: &ProptestConfig, test_name: &str, mut case_fn: F)
where
    F: FnMut(&mut TestRng) -> (String, TestCaseResult),
{
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, case);
        let outcome = catch_unwind(AssertUnwindSafe(|| case_fn(&mut rng)));
        let (desc, result) = match outcome {
            Ok(pair) => pair,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>");
                panic!(
                    "proptest `{test_name}` case {case}/{} panicked: {msg}",
                    config.cases
                );
            }
        };
        match result {
            Ok(()) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{test_name}` case {case}/{} failed: {msg}\n  inputs: {desc}",
                    config.cases
                );
            }
            Err(TestCaseError::Reject(msg)) => {
                panic!(
                    "proptest `{test_name}` case {case}/{} rejected its inputs: {msg}",
                    config.cases
                );
            }
        }
    }
}
