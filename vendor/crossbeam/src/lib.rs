#![warn(missing_docs)]

//! Offline stand-in for the `crossbeam` crate.
//!
//! The crates-io mirror is unreachable in this build environment, so the
//! workspace vendors the API subset it uses: [`scope`]d threads that may
//! borrow from the enclosing stack frame. The implementation delegates to
//! `std::thread::scope` (stabilized long after crossbeam pioneered the
//! pattern) and keeps crossbeam's error-reporting shape: [`scope`] returns
//! `Err` if a spawned thread panicked without being joined, and joining a
//! handle returns the panic payload of that one thread.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of joining a thread: `Err` carries the panic payload.
pub type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// A scope for spawning threads that borrow from the caller's stack.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a thread spawned in a [`Scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> ThreadResult<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives a
    /// reference to the scope so it can spawn further threads.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: inner_scope.spawn(move || {
                let scope = Scope { inner: inner_scope };
                f(&scope)
            }),
        }
    }
}

/// Creates a scope in which threads borrowing `'env` data can be spawned.
///
/// All spawned threads are joined before `scope` returns. Returns `Err`
/// with the first panic payload if a thread panicked without being joined
/// (joined panics are reported through [`ScopedJoinHandle::join`] instead).
pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

/// `crossbeam::thread` module alias, mirroring the real crate layout.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn joined_panics_surface_per_handle() {
        let result = scope(|s| {
            let good = s.spawn(|_| 7);
            let bad = s.spawn(|_| -> i32 { panic!("boom") });
            (good.join(), bad.join())
        })
        .unwrap();
        assert_eq!(result.0.unwrap(), 7);
        assert!(result.1.is_err());
    }

    #[test]
    fn nested_spawns_work() {
        let n = scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
