#![warn(missing_docs)]

//! Offline stand-in for the `parking_lot` crate.
//!
//! The crates-io mirror is unreachable in this build environment, so the
//! workspace vendors the API subset it uses: [`Mutex`], [`RwLock`], and
//! [`Condvar`] with parking_lot's poison-free signatures (`lock()` returns
//! the guard directly). The implementation delegates to `std::sync`; a
//! poisoned std lock means a thread panicked while holding it, and this
//! wrapper recovers the guard exactly as parking_lot would by simply not
//! tracking poison.

use std::fmt;
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a wait with a timeout: whether the wait timed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guard's lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, res) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Blocks until notified or until `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Blocks while `condition` holds, waking on notifications.
    pub fn wait_while<T, F: FnMut(&mut T) -> bool>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: F,
    ) {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Temporarily moves the std guard out of the wrapper to run a
/// guard-consuming std API, then restores it.
fn take_guard<T, F>(guard: &mut MutexGuard<'_, T>, f: F)
where
    F: for<'g> FnOnce(sync::MutexGuard<'g, T>) -> sync::MutexGuard<'g, T>,
{
    // SAFETY-free plumbing: swap out the inner guard via Option dance.
    // We cannot move out of `&mut` directly, so wrap the call with
    // `replace`-style mechanics using `std::mem`. The guard type has no
    // Drop obligations beyond unlocking, which `f` preserves by
    // returning a live guard for the same mutex.
    unsafe {
        let inner = std::ptr::read(&guard.inner);
        let new = f(inner);
        std::ptr::write(&mut guard.inner, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            cv.wait_while(&mut started, |s| !*s);
            *started
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        assert_eq!(*m.lock(), 1);
    }
}
