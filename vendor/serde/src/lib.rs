#![warn(missing_docs)]

//! Offline stand-in for `serde`.
//!
//! The crates-io mirror is unreachable in this build environment, so the
//! workspace vendors a simplified serialization framework with the same
//! surface the code actually uses: `#[derive(Serialize, Deserialize)]`
//! plus `serde_json::{to_string, to_string_pretty, from_str}`.
//!
//! Instead of real serde's visitor-based zero-copy data model, this crate
//! serializes through an owned [`Value`] tree (the JSON object model):
//! [`Serialize`] renders a value into a [`Value`], [`Deserialize`] parses
//! one back. That is a strict simplification — adequate for the report
//! files and snapshots this workspace emits, not for streaming or
//! non-self-describing formats.

// Let the derive macros' `::serde::` paths resolve inside this crate's
// own tests (the same trick real serde uses).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing data value (the JSON object model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept separate to round-trip `u64::MAX`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Key-value map, preserving insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value as a map, if it is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a sequence, if it is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, coercing from any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `i64`, coercing from exactly-representable numbers.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Float(v) if v.fract() == 0.0 && v.abs() < 2f64.powi(63) => Some(v as i64),
            _ => None,
        }
    }

    /// The value as a `u64`, coercing from exactly-representable numbers.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) => u64::try_from(v).ok(),
            Value::Float(v) if v.fract() == 0.0 && (0.0..2f64.powi(64)).contains(&v) => {
                Some(v as u64)
            }
            _ => None,
        }
    }
}

/// A deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// A missing map key.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An unknown enum variant string.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        DeError(format!("unknown {ty} variant `{variant}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a derive-generated struct field in a deserialized map.
pub fn get_field<'v>(map: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::missing_field("struct", name))
}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the value tree.
    fn serialize(&self) -> Value;
}

/// Types parseable from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses an instance from the value tree.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls --------------------------------------------------

macro_rules! impl_int {
    ($($t:ty => $variant:ident as $as:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::$variant(*self as $as)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let wide = value
                    .as_i64()
                    .map(|v| v as i128)
                    .or_else(|| value.as_u64().map(|v| v as i128))
                    .ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(wide)
                    .map_err(|_| DeError::expected(concat!("in-range ", stringify!($t)), stringify!($t)))
            }
        }
    )*};
}

impl_int!(
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64,
    u64 => UInt as u64, usize => UInt as u64,
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64,
    i64 => Int as i64, isize => Int as i64
);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", "()")),
        }
    }
}

// ---- containers -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let seq = value.as_seq().ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::expected("tuple-length sequence", "tuple"));
                }
                Ok(($($name::deserialize(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Map keys serializable as JSON object keys.
pub trait MapKey: Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back from a string.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::expected("integer key", stringify!($t)))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize()))
            .collect();
        // HashMap iteration order is unstable; sort for deterministic output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::expected("map", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Named {
        count: usize,
        ratio: f64,
        label: String,
        flags: Vec<bool>,
        nested: Option<Inner>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner {
        id: u16,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct NewType(u64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Pair(i32, i32);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mode {
        Fast,
        Slow,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Generic<T> {
        inner: Vec<T>,
    }

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let value = v.serialize();
        let back = T::deserialize(&value).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn named_struct_round_trips() {
        round_trip(Named {
            count: 3,
            ratio: 0.25,
            label: "hi".into(),
            flags: vec![true, false],
            nested: Some(Inner { id: 9 }),
        });
        round_trip(Named {
            count: 0,
            ratio: -1.5,
            label: String::new(),
            flags: vec![],
            nested: None,
        });
    }

    #[test]
    fn newtype_serializes_transparently() {
        assert_eq!(NewType(7).serialize(), Value::UInt(7));
        round_trip(NewType(u64::MAX));
        assert_eq!(
            Pair(1, -2).serialize(),
            Value::Seq(vec![Value::Int(1), Value::Int(-2)])
        );
        round_trip(Pair(-3, 4));
    }

    #[test]
    fn unit_enums_are_strings() {
        assert_eq!(Mode::Fast.serialize(), Value::Str("Fast".into()));
        round_trip(Mode::Slow);
        assert!(Mode::deserialize(&Value::Str("Medium".into())).is_err());
    }

    #[test]
    fn generics_and_maps_round_trip() {
        round_trip(Generic {
            inner: vec![1u32, 2, 3],
        });
        let mut m = HashMap::new();
        m.insert(5u16, vec![1.0f64, 2.0]);
        m.insert(2u16, vec![]);
        let v = m.serialize();
        // Deterministic (sorted) key order.
        assert_eq!(
            v.as_map()
                .unwrap()
                .iter()
                .map(|(k, _)| k.as_str())
                .collect::<Vec<_>>(),
            vec!["2", "5"]
        );
        let back: HashMap<u16, Vec<f64>> = HashMap::deserialize(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::deserialize(&Value::UInt(300)).is_err());
        assert_eq!(i64::deserialize(&Value::UInt(5)).unwrap(), 5);
        assert!(u32::deserialize(&Value::Int(-1)).is_err());
    }
}
