#![warn(missing_docs)]

//! Offline stand-in for `criterion`.
//!
//! The crates-io mirror is unreachable in this build environment, so the
//! workspace vendors the benchmark-definition API it uses
//! (`criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! benchmark groups, [`BenchmarkId`]) backed by a deliberately small
//! timing loop: each benchmark runs a short warm-up followed by a fixed
//! number of timed iterations and prints mean time per iteration.
//!
//! This keeps `cargo bench` runnable and the bench targets compiling,
//! without criterion's statistical machinery. Passing `--test` (as
//! `cargo test` does for bench targets) runs each benchmark exactly once
//! as a smoke test.
//!
//! Beyond printing `ns/iter` per benchmark, completed measurements are
//! recorded in a process-wide registry; `criterion_main!` ends by
//! calling [`write_summary`], which emits machine-readable JSON (to
//! `$CRITERION_JSON` if set, else `target/criterion/<bench>.json`) so
//! offline runs produce comparable numbers.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many timed iterations a full measurement performs.
const MEASURE_ITERS: u32 = 30;

/// One completed benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label (`group/function/param`).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Timed iterations behind the mean.
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains and returns every measurement recorded so far (in run order).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().unwrap())
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serializes recorded measurements as JSON and writes them to
/// `$CRITERION_JSON` (if set) or `target/criterion/<bench>.json`.
/// No-op when nothing was measured (e.g. `--test` smoke mode). Called
/// automatically by `criterion_main!`.
pub fn write_summary() {
    let results = take_results();
    if results.is_empty() {
        return;
    }
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "  {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}",
                json_escape(&r.name),
                r.ns_per_iter,
                r.iters
            )
        })
        .collect();
    let json = format!("{{\"results\": [\n{}\n]}}\n", rows.join(",\n"));
    let path = match std::env::var_os("CRITERION_JSON") {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let stem = std::env::current_exe()
                .ok()
                .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
                .unwrap_or_else(|| "bench".to_string());
            // Strip the `-<hash>` suffix cargo appends to bench binaries.
            let stem = stem.rsplit_once('-').map_or(stem.clone(), |(base, tail)| {
                if tail.len() == 16 && tail.chars().all(|c| c.is_ascii_hexdigit()) {
                    base.to_string()
                } else {
                    stem.clone()
                }
            });
            std::path::PathBuf::from("target/criterion").join(format!("{stem}.json"))
        }
    };
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote benchmark summary to {}", path.display()),
        Err(e) => eprintln!("failed to write benchmark summary {}: {e}", path.display()),
    }
}

/// The benchmark manager handed to each group function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Builds the manager, reading `--test` from the command line.
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Ignored configuration hook (API compatibility).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Ignored configuration hook (API compatibility).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Ignored configuration hook (API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.test_mode, &mut routine);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            test_mode: self.test_mode,
            _criterion: self,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Ignored configuration hook (API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored configuration hook (API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.test_mode, &mut |b| routine(b, input));
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.test_mode, &mut routine);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// The per-benchmark timing handle.
pub struct Bencher {
    test_mode: bool,
    /// Mean time per iteration of the last `iter` call.
    elapsed: Duration,
    iters_run: u64,
}

impl Bencher {
    /// Times `routine`, running warm-up plus measured iterations (or a
    /// single iteration in `--test` mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.elapsed = Duration::ZERO;
            self.iters_run = 1;
            return;
        }
        // Warm-up: run until ~10 ms have elapsed (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() > Duration::from_millis(10) {
                break;
            }
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed() / MEASURE_ITERS;
        self.iters_run = u64::from(MEASURE_ITERS);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, test_mode: bool, routine: &mut F) {
    let mut bencher = Bencher {
        test_mode,
        elapsed: Duration::ZERO,
        iters_run: 0,
    };
    routine(&mut bencher);
    if test_mode {
        println!("test bench {label} ... ok");
    } else {
        let ns_per_iter = bencher.elapsed.as_nanos() as f64;
        println!(
            "{label}: {ns_per_iter:.0} ns/iter ({:?}/iter, {} iters)",
            bencher.elapsed, bencher.iters_run
        );
        RESULTS.lock().unwrap().push(BenchResult {
            name: label.to_string(),
            ns_per_iter,
            iters: bencher.iters_run,
        });
    }
}

/// Declares a group of benchmark functions (API-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { test_mode: true };
        let mut runs = 0u32;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn measured_runs_are_recorded() {
        let mut c = Criterion { test_mode: false };
        c.bench_function("shim-registry-probe", |b| b.iter(|| black_box(1 + 1)));
        let results = take_results();
        let r = results
            .iter()
            .find(|r| r.name == "shim-registry-probe")
            .expect("measured run must land in the registry");
        assert!(r.ns_per_iter >= 0.0);
        assert_eq!(r.iters, u64::from(MEASURE_ITERS));
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn groups_compose_ids() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut hits = 0;
        group.bench_with_input(BenchmarkId::from_parameter(128), &128usize, |b, &n| {
            b.iter(|| hits += n)
        });
        group.finish();
        assert_eq!(hits, 128);
    }
}
