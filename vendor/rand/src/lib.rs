#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The crates-io mirror is unreachable in this build environment, so the
//! workspace vendors the API subset it uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen`] for
//! primitives, and [`rngs::StdRng`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — high-quality, fast, and fully deterministic for a
//! given seed, which is all the reproduction's seeded workloads require
//! (no test depends on matching the upstream `StdRng` stream).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Samples from an explicit distribution (upstream's
    /// `Rng::sample`).
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

/// Non-uniform distributions (the API subset the workspace uses).
pub mod distributions {
    use super::RngCore;

    /// A distribution that can be sampled with any [`RngCore`].
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard normal distribution `N(0, 1)`, sampled by
    /// Box–Muller. Each draw consumes two uniform words; the second
    /// variate of the pair is discarded so the distribution is
    /// stateless (no cached spare that would make sampling order
    /// observable).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct StandardNormal;

    impl Distribution<f64> for StandardNormal {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // u1 in (0, 1]: shift the 53-bit uniform off zero so the
            // logarithm is always finite.
            let u1 = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
            let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        }
    }

    impl Distribution<f32> for StandardNormal {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            <Self as Distribution<f64>>::sample(self, rng) as f32
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // A xoshiro state of all zeros is degenerate; SplitMix64 only
            // produces it with negligible probability, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API compatibility: the stand-in has a single
    /// generator quality tier.
    pub type SmallRng = StdRng;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform integer in `[0, bound)` via Lemire-style rejection (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Rejection zone keeps the multiply-shift map exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let (hi, lo) = {
            let wide = (x as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v), "{v}");
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 16];
        for _ in 0..1_000 {
            let v = rng.gen_range(0..16);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&v));
            let w = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&w));
        }
    }

    #[test]
    fn bool_and_gen_bool() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut trues = 0;
        for _ in 0..1_000 {
            if rng.gen::<bool>() {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "{trues}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5..5);
    }

    #[test]
    fn standard_normal_moments_are_sane() {
        use super::distributions::StandardNormal;
        let mut rng = StdRng::seed_from_u64(23);
        let n = 20_000;
        let (mut sum, mut sum_sq) = (0.0_f64, 0.0_f64);
        for _ in 0..n {
            let x: f64 = rng.sample(StandardNormal);
            assert!(x.is_finite());
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
        // f32 sampling goes through the same path.
        let y: f32 = rng.sample(StandardNormal);
        assert!(y.is_finite());
    }
}
