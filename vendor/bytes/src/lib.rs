#![warn(missing_docs)]

//! Offline stand-in for the `bytes` crate.
//!
//! The crates-io mirror is unreachable in this build environment, so the
//! workspace vendors the small API subset it actually uses: [`Bytes`], a
//! cheaply cloneable (reference-counted) immutable byte buffer. Cloning
//! shares the underlying allocation, which is the property the simulator's
//! packet broadcast relies on.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pointer to the first byte (stable across clones: the allocation is
    /// shared, not copied).
    pub fn as_ptr(&self) -> *const u8 {
        self.data.as_ptr()
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn deref_and_debug() {
        let a = Bytes::from(vec![b'h', b'i', 0]);
        assert_eq!(&a[..2], b"hi");
        assert_eq!(format!("{a:?}"), "b\"hi\\x00\"");
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
