#![warn(missing_docs)]

//! Offline stand-in for `serde_json`.
//!
//! Emits and parses JSON text for the vendored value-based `serde` (see
//! `vendor/serde`). Covers the workspace's usage: [`to_string`],
//! [`to_string_pretty`], and [`from_str`]. Non-finite floats serialize as
//! `null`, matching real serde_json's default behavior.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::deserialize(&value)?)
}

/// Parses JSON text into the generic [`Value`] tree.
pub fn from_str_value(text: &str) -> Result<Value, Error> {
    parse(text)
}

// ---- writer -----------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if v.is_finite() {
                // `{}` on f64 prints the shortest round-trippable form, but
                // bare integers (`1`) must stay float-typed in JSON.
                let text = v.to_string();
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the
                            // workspace's ASCII report keys.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", *other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (may span several bytes).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Report {
        name: String,
        latency_ms: f64,
        tasks: Vec<u64>,
        ok: bool,
        note: Option<String>,
    }

    #[test]
    fn round_trips_through_text() {
        let r = Report {
            name: "batch \"7\"".into(),
            latency_ms: 1.25,
            tasks: vec![1, 2, 3],
            ok: true,
            note: None,
        };
        let text = to_string(&r).unwrap();
        let back: Report = from_str(&text).unwrap();
        assert_eq!(r, back);

        let pretty = to_string_pretty(&r).unwrap();
        assert!(pretty.contains("\n  \"name\""));
        let back: Report = from_str(&pretty).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn floats_keep_float_typing() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str_value(r#"{"a": [1, -2, 3.5], "b": {"c": null}}"#).unwrap();
        let map = v.as_map().unwrap();
        assert_eq!(map[0].0, "a");
        assert_eq!(
            map[0].1.as_seq().unwrap(),
            &[Value::UInt(1), Value::Int(-2), Value::Float(3.5)]
        );
        assert_eq!(map[1].1.as_map().unwrap()[0].1, Value::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str_value("{").is_err());
        assert!(from_str_value("[1,]").is_err());
        assert!(from_str_value("12 34").is_err());
        assert!(from_str_value("\"unterminated").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let text = to_string(&"line\nbreak\tand \u{1} ctrl".to_string()).unwrap();
        assert_eq!(text, "\"line\\nbreak\\tand \\u0001 ctrl\"");
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, "line\nbreak\tand \u{1} ctrl");
    }
}
