//! Offline stand-in for `serde_derive`.
//!
//! The crates-io mirror is unreachable in this build environment, so the
//! workspace vendors its own serde (see `vendor/serde`): a simplified,
//! JSON-oriented data model where `Serialize` renders to `serde::Value`
//! and `Deserialize` parses from it. These derives generate those impls.
//!
//! Because `syn`/`quote` are equally unavailable, the item is parsed
//! directly from the `proc_macro` token stream. Supported shapes — which
//! cover every derived type in this workspace — are:
//!
//! * structs with named fields (including type generics),
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   sequences),
//! * unit structs, and
//! * enums whose variants are all unit variants (serialized as strings).
//!
//! `#[serde(...)]` attributes are not supported and produce a compile
//! error rather than being silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored, value-based trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (the vendored, value-based trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Kind {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    kind: Kind,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated impl must parse")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error must parse"),
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i)?;

    let item_kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    if item_kw != "struct" && item_kw != "enum" {
        return Err(format!("cannot derive serde traits for `{item_kw}` items"));
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i)?;

    // Skip anything (e.g. a `where` clause) up to the body or `;`.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let kind = if item_kw == "enum" {
                    parse_enum_body(g.stream())?
                } else {
                    parse_named_body(g.stream())?
                };
                return Ok(Item {
                    name,
                    generics,
                    kind,
                });
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && item_kw == "struct" =>
            {
                let arity = count_tuple_fields(g.stream());
                return Ok(Item {
                    name,
                    generics,
                    kind: Kind::Tuple(arity),
                });
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Ok(Item {
                    name,
                    generics,
                    kind: Kind::Unit,
                });
            }
            Some(_) => i += 1,
            None => return Err("unexpected end of item".into()),
        }
    }
}

/// Skips `#[...]` / `#![...]` attributes and a `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
                    if p.as_char() == '!' {
                        *i += 1;
                    }
                }
                match tokens.get(*i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if g.stream().to_string().starts_with("serde") {
                            return Err(
                                "the vendored serde derive does not support #[serde(...)] \
                                 attributes"
                                    .into(),
                            );
                        }
                        *i += 1;
                    }
                    other => return Err(format!("malformed attribute: {other:?}")),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Parses `<...>` after the item name, returning type-parameter idents.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Ok(Vec::new()),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut at_param_start = true;
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) => match p.as_char() {
                '<' => {
                    depth += 1;
                    *i += 1;
                }
                '>' => {
                    depth -= 1;
                    *i += 1;
                }
                ',' => {
                    if depth == 1 {
                        at_param_start = true;
                    }
                    *i += 1;
                }
                '\'' => {
                    // Lifetime: consume the quote and its ident.
                    at_param_start = false;
                    *i += 2;
                }
                _ => {
                    at_param_start = false;
                    *i += 1;
                }
            },
            Some(TokenTree::Ident(id)) => {
                let text = id.to_string();
                if depth == 1 && at_param_start && text != "const" {
                    params.push(text);
                }
                at_param_start = false;
                *i += 1;
            }
            Some(_) => {
                at_param_start = false;
                *i += 1;
            }
            None => return Err("unterminated generics".into()),
        }
    }
    Ok(params)
}

/// Parses `{ field: Type, ... }` returning field names in order.
fn parse_named_body(body: TokenStream) -> Result<Kind, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{field}`, got {other:?}")),
        }
        fields.push(field);
        // Skip the type up to the next top-level comma.
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(Kind::Named(fields))
}

/// Counts fields of a tuple struct body `(Type, Type, ...)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut count = 1;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not introduce a field.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') && angle == 0 {
        count -= 1;
    }
    count
}

/// Parses an enum body, requiring every variant to be a unit variant.
fn parse_enum_body(body: TokenStream) -> Result<Kind, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "the vendored serde derive only supports unit enum variants; \
                     variant `{variant}` carries data"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the next comma.
                while let Some(tok) = tokens.get(i) {
                    i += 1;
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            None => {}
            other => return Err(format!("unexpected token in enum body: {other:?}")),
        }
        variants.push(variant);
    }
    Ok(Kind::Enum(variants))
}

/// `impl<...> Trait for Name<...>` header pieces for the item's generics.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounds: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", bounds.join(", ")),
            format!("{}<{}>", item.name, item.generics.join(", ")),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, ty) = impl_header(item, "::serde::Serialize");
    let body = match &item.kind {
        Kind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Kind::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::serialize(&self.{idx})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let name = &item.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?}))"
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {ty} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, ty) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         ::serde::get_field(__map, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "let __map = __value.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"map\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                entries.join(", ")
            )
        }
        Kind::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__value)?))"
        ),
        Kind::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Deserialize::deserialize(&__seq[{idx}])?"))
                .collect();
            format!(
                "let __seq = __value.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"sequence\", {name:?}))?;\n\
                 if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"{n}-element sequence\", {name:?})); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                entries.join(", ")
            )
        }
        Kind::Unit => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "let __s = __value.as_str().ok_or_else(|| \
                 ::serde::DeError::expected(\"string\", {name:?}))?;\n\
                 match __s {{ {}, __other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant({name:?}, __other)) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {ty} {{\n\
             fn deserialize(__value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
